package bench

import (
	"phylo/internal/alignment"
	"phylo/internal/core"
	"phylo/internal/model"
	"phylo/internal/parallel"
	"phylo/internal/seqsim"
	"phylo/internal/tree"
	"testing"
)

// bootstrapReplicates is the batch width R the bootstrap microbenchmark
// measures at: wide enough that the per-lane reduction cost is visible next
// to the shared site-likelihood computation, narrow enough that the
// R-independent-sessions control finishes quickly.
const bootstrapReplicates = 32

// BootstrapTiming compares the two ways to score R bootstrap replicates of
// one topology at one thread count: a single batched session (newview once,
// one R-wide evaluate sweep) versus R independent single-replicate sessions
// (each paying its own session setup, CLV traversal, and evaluate — the only
// option before weight batching existed). The ns figures are per replicate;
// replicates/sec is the headline each mode sustains.
type BootstrapTiming struct {
	Threads    int `json:"threads"`
	Replicates int `json:"replicates"`
	// BatchedNsPerRep is one batched sweep (full newview traversal plus the
	// R-lane evaluate) divided by R.
	BatchedNsPerRep float64 `json:"batched_ns_per_rep"`
	// IndependentNsPerRep is one dedicated single-replicate session run:
	// session construction, full traversal, weighted evaluate.
	IndependentNsPerRep   float64 `json:"independent_ns_per_rep"`
	BatchedRepsPerSec     float64 `json:"batched_reps_per_sec"`
	IndependentRepsPerSec float64 `json:"independent_reps_per_sec"`
	// Speedup is IndependentNsPerRep / BatchedNsPerRep; CompareReports holds
	// it to an absolute floor at one thread (see bootstrapSpeedupFloor).
	Speedup float64 `json:"speedup"`
}

// bootstrapBench measures BootstrapTiming on the standard small-grid
// benchmark dataset at each thread count. Both modes share one core.Shared
// and score the identical topology under the identical replicate weight
// vectors; the batched mode runs with the spans priced for width R
// (Shared.SetBatchWidth), the independent control at width 1 — each mode is
// measured under its own honest schedule pricing.
func bootstrapBench(rep *MicrobenchReport, threadCounts []int, scale float64, seed int64) error {
	ds, err := seqsim.GridDataset(20, 20000, 1000, scale, seed)
	if err != nil {
		return err
	}
	d, err := alignment.Compress(ds.Alignment, ds.Parts, alignment.CompressOptions{})
	if err != nil {
		return err
	}
	models := make([]*model.Model, len(d.Parts))
	for i, p := range d.Parts {
		if models[i], err = model.DefaultFor(p, 4, 1.0); err != nil {
			return err
		}
	}
	const R = bootstrapReplicates
	ws, err := core.NewWeightSet(d, R, seed+3)
	if err != nil {
		return err
	}
	rep.BootstrapDataset = ds.Name
	for _, t := range threadCounts {
		pool, err := parallel.NewPool(t)
		if err != nil {
			return err
		}
		sh, err := core.NewShared(d, 4, t)
		if err != nil {
			pool.Close()
			return err
		}
		tr, err := tree.Random(ds.Alignment.Names, len(d.Parts), tree.RandomOptions{Seed: seed + 1})
		if err != nil {
			pool.Close()
			return err
		}
		newSession := func() (*core.Engine, error) {
			ms := make([]*model.Model, len(models))
			for i, m := range models {
				ms[i] = m.Clone()
			}
			return core.NewSession(sh, tr, ms, pool.Session(), core.Options{Specialize: true})
		}

		// Batched mode: one session, spans priced for width R; each iteration
		// recomputes the CLVs once and reduces all R replicates in one sweep.
		if err := sh.SetBatchWidth(R); err != nil {
			pool.Close()
			return err
		}
		eng, err := newSession()
		if err != nil {
			pool.Close()
			return err
		}
		if _, err := eng.LogLikelihoodBatch(ws); err != nil { // warm CLVs and batch buffers
			pool.Close()
			return err
		}
		batched := testing.Benchmark(func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				eng.InvalidateCLVs()
				if _, err := eng.LogLikelihoodBatch(ws); err != nil {
					b.Fatal(err)
				}
			}
		})

		// Independent control: every replicate is a dedicated session — built,
		// traversed, and evaluated under that replicate's weights, exactly what
		// a bootstrap fleet costs without weight batching. One iteration = one
		// replicate; the replicate index cycles so all weight vectors are used.
		if err := sh.SetBatchWidth(1); err != nil {
			pool.Close()
			return err
		}
		r := 0
		independent := testing.Benchmark(func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				e, err := newSession()
				if err != nil {
					b.Fatal(err)
				}
				if err := e.SetWeightOverride(ws.Replicate(r % R)); err != nil {
					b.Fatal(err)
				}
				e.LogLikelihood()
				r++
			}
		})
		pool.Close()

		bt := BootstrapTiming{
			Threads:             t,
			Replicates:          R,
			BatchedNsPerRep:     float64(batched.NsPerOp()) / R,
			IndependentNsPerRep: float64(independent.NsPerOp()),
		}
		if bt.BatchedNsPerRep > 0 {
			bt.BatchedRepsPerSec = 1e9 / bt.BatchedNsPerRep
			bt.Speedup = bt.IndependentNsPerRep / bt.BatchedNsPerRep
		}
		if bt.IndependentNsPerRep > 0 {
			bt.IndependentRepsPerSec = 1e9 / bt.IndependentNsPerRep
		}
		rep.Bootstrap = append(rep.Bootstrap, bt)
	}
	return nil
}
