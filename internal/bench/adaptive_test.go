package bench

import (
	"context"
	"math"
	"testing"

	"phylo/internal/schedule"
)

// TestAdaptiveBeatsMispricedWeightedOnSkewedMixedData is the acceptance
// check for the feedback-driven scheduler: on the mixed DNA+AA dataset with
// a deliberately 100x-mispriced analytic cost model, the measured strategy's
// end-state per-worker op imbalance (probed under each final schedule) must
// not exceed the static weighted strategy's, every strategy must produce the
// cyclic likelihood within 1e-9, and the adaptive session must actually have
// rebalanced.
func TestAdaptiveBeatsMispricedWeightedOnSkewedMixedData(t *testing.T) {
	if testing.Short() {
		t.Skip("full model optimization runs")
	}
	if raceEnabled {
		// The gate is driven by measured wall time per worker; the race
		// detector's instrumentation overhead flattens the DNA/AA cost gap
		// (sub-microsecond shares) below the hysteresis threshold, so the
		// adaptive session legitimately never rebalances there. The
		// concurrency of the rebalance path is race-tested separately in
		// internal/core and the facade package.
		t.Skip("timing-driven acceptance gate is not meaningful under the race detector")
	}
	cfg := FigureConfig{Scale: 0.02, Seed: 42}
	comp, results, err := adaptiveComparisonRun(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	// The weighted side is deterministic, but the adaptive pack is steered by
	// measured wall time; on a badly noisy runner one window could misplace
	// remainder patterns. Shield against that single failure mode by
	// requiring a spurious loss to reproduce on a fresh comparison before
	// failing the gate.
	if comp.AdaptiveImbalance > comp.WeightedImbalance+1e-9 {
		t.Logf("adaptive %v above weighted %v on the first run; re-measuring once", comp.AdaptiveImbalance, comp.WeightedImbalance)
		if comp, results, err = adaptiveComparisonRun(context.Background(), cfg); err != nil {
			t.Fatal(err)
		}
	}
	cyc := results[schedule.Cyclic]
	for _, strat := range []schedule.Strategy{schedule.Weighted, schedule.Measured} {
		m := results[strat]
		if diff := math.Abs(m.LnL - cyc.LnL); diff > 1e-9*math.Abs(cyc.LnL) {
			t.Errorf("%v changed the optimum: lnL %v vs cyclic %v", strat, m.LnL, cyc.LnL)
		}
	}
	t.Logf("end-state worker imbalance: cyclic %.5f, weighted %.5f, adaptive %.5f (%d rebalances)",
		comp.CyclicImbalance, comp.WeightedImbalance, comp.AdaptiveImbalance, comp.AdaptiveRebalances)
	if comp.AdaptiveImbalance > comp.WeightedImbalance+1e-9 {
		t.Errorf("adaptive end-state imbalance %v exceeds mispriced weighted %v — the feedback loop failed to recover",
			comp.AdaptiveImbalance, comp.WeightedImbalance)
	}
	if comp.AdaptiveRebalances < 1 {
		t.Errorf("adaptive session never rebalanced (threshold 1.01, %d rounds of skewed imbalance)", comp.AdaptiveRebalances)
	}
	if comp.AdaptiveImbalance < 1 || comp.WeightedImbalance < 1 || comp.CyclicImbalance < 1 {
		t.Errorf("imbalance below 1: %+v", comp)
	}
	// The probe stats themselves must carry sane measured time.
	adp := results[schedule.Measured]
	if adp.EndStats.TotalTime <= 0 || adp.EndStats.TimeImbalance() < 1 {
		t.Errorf("probe time stats insane: total=%v imbalance=%v", adp.EndStats.TotalTime, adp.EndStats.TimeImbalance())
	}
}
