package obs

import (
	"encoding/json"
	"math"
	"regexp"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestCounterGaugeBasics(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("plk_test_total", "test counter", Label{"kind", "a"})
	c.Inc()
	c.Add(2.5)
	if got := c.Value(); got != 3.5 {
		t.Fatalf("counter = %v, want 3.5", got)
	}
	g := r.Gauge("plk_test_gauge", "test gauge")
	g.Set(7)
	g.Add(-3)
	if got := g.Value(); got != 4 {
		t.Fatalf("gauge = %v, want 4", got)
	}
}

func TestIdempotentRegistration(t *testing.T) {
	r := NewRegistry()
	a := r.Counter("plk_x_total", "x", Label{"w", "0"})
	b := r.Counter("plk_x_total", "x", Label{"w", "0"})
	if a.s != b.s {
		t.Fatal("same (name, labels) must resolve to the same series")
	}
	c := r.Counter("plk_x_total", "x", Label{"w", "1"})
	if a.s == c.s {
		t.Fatal("different labels must be distinct series")
	}
	a.Inc()
	b.Inc()
	if a.Value() != 2 {
		t.Fatalf("aggregated value = %v, want 2", a.Value())
	}
}

func TestKindMismatchPanics(t *testing.T) {
	r := NewRegistry()
	r.Counter("plk_y_total", "y")
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on kind mismatch")
		}
	}()
	r.Gauge("plk_y_total", "y")
}

func TestHistogramBuckets(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("plk_h_seconds", "h", []float64{0.1, 1, 10})
	for _, v := range []float64{0.05, 0.5, 0.5, 5, 50} {
		h.Observe(v)
	}
	if h.Count() != 5 {
		t.Fatalf("count = %d, want 5", h.Count())
	}
	if math.Abs(h.Sum()-56.05) > 1e-9 {
		t.Fatalf("sum = %v, want 56.05", h.Sum())
	}
	var b strings.Builder
	if err := r.WriteText(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		`plk_h_seconds_bucket{le="0.1"} 1`,
		`plk_h_seconds_bucket{le="1"} 3`,
		`plk_h_seconds_bucket{le="10"} 4`,
		`plk_h_seconds_bucket{le="+Inf"} 5`,
		`plk_h_seconds_count 5`,
		"# TYPE plk_h_seconds histogram",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q in:\n%s", want, out)
		}
	}
}

func TestFuncMetrics(t *testing.T) {
	r := NewRegistry()
	n := 41.0
	r.CounterFunc("plk_fn_total", "fn", func() float64 { return n })
	r.GaugeFunc("plk_fn_gauge", "fn", func() float64 { return -n })
	n = 42
	var b strings.Builder
	if err := r.WriteText(&b); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "plk_fn_total 42") || !strings.Contains(b.String(), "plk_fn_gauge -42") {
		t.Fatalf("func metrics not evaluated at scrape:\n%s", b.String())
	}
}

// expositionLine matches a Prometheus text-format sample or comment line.
var expositionLine = regexp.MustCompile(
	`^(# (HELP|TYPE) [a-zA-Z_:][a-zA-Z0-9_:]* .*|[a-zA-Z_:][a-zA-Z0-9_:]*(\{[a-zA-Z_][a-zA-Z0-9_]*="(?:[^"\\]|\\.)*"(,[a-zA-Z_][a-zA-Z0-9_]*="(?:[^"\\]|\\.)*")*\})? (-?[0-9.e+-]+|\+Inf|-Inf|NaN))$`)

func TestExpositionWellFormedAndSorted(t *testing.T) {
	r := NewRegistry()
	r.Counter("plk_b_total", "b", Label{"k", `quote " backslash \ done`}).Inc()
	r.Counter("plk_a_total", "a").Add(1)
	r.Histogram("plk_c_seconds", "c", []float64{0.5}).Observe(0.1)
	var b strings.Builder
	if err := r.WriteText(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	var familiesSeen []string
	for _, line := range strings.Split(strings.TrimRight(out, "\n"), "\n") {
		if !expositionLine.MatchString(line) {
			t.Errorf("malformed exposition line: %q", line)
		}
		if strings.HasPrefix(line, "# HELP ") {
			familiesSeen = append(familiesSeen, strings.Fields(line)[2])
		}
	}
	want := []string{"plk_a_total", "plk_b_total", "plk_c_seconds"}
	if len(familiesSeen) != len(want) {
		t.Fatalf("families = %v, want %v", familiesSeen, want)
	}
	for i := range want {
		if familiesSeen[i] != want[i] {
			t.Fatalf("families not sorted: %v", familiesSeen)
		}
	}
	if !strings.Contains(out, `k="quote \" backslash \\ done"`) {
		t.Errorf("label escaping wrong:\n%s", out)
	}
}

func TestSnapshotFlattensHistograms(t *testing.T) {
	r := NewRegistry()
	r.Counter("plk_s_total", "s").Add(3)
	h := r.Histogram("plk_s_seconds", "s", []float64{1, 2})
	h.Observe(0.5)
	h.Observe(5)
	byName := map[string]float64{}
	for _, s := range r.Snapshot() {
		key := s.Name
		for _, l := range s.Labels {
			key += "|" + l.Key + "=" + l.Value
		}
		byName[key] = s.Value
	}
	for key, want := range map[string]float64{
		"plk_s_total":                  3,
		"plk_s_seconds_bucket|le=1":    1,
		"plk_s_seconds_bucket|le=2":    1,
		"plk_s_seconds_bucket|le=+Inf": 2,
		"plk_s_seconds_sum":            5.5,
		"plk_s_seconds_count":          2,
	} {
		if got, ok := byName[key]; !ok || got != want {
			t.Errorf("snapshot[%s] = %v (present %v), want %v", key, got, ok, want)
		}
	}
}

func TestUpdatesAllocFree(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("plk_alloc_total", "a")
	g := r.Gauge("plk_alloc_gauge", "a")
	h := r.Histogram("plk_alloc_seconds", "a", []float64{0.001, 0.01, 0.1, 1})
	if n := testing.AllocsPerRun(1000, func() {
		c.Add(1)
		g.Set(2)
		h.Observe(0.05)
	}); n != 0 {
		t.Fatalf("metric updates allocate %v allocs/op, want 0", n)
	}
}

func TestConcurrentUpdates(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("plk_conc_total", "c")
	h := r.Histogram("plk_conc_seconds", "c", []float64{0.5})
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				c.Inc()
				h.Observe(0.25)
			}
		}()
	}
	wg.Wait()
	if c.Value() != 8000 {
		t.Fatalf("counter = %v, want 8000", c.Value())
	}
	if h.Count() != 8000 {
		t.Fatalf("histogram count = %d, want 8000", h.Count())
	}
}

func TestTracerChromeJSON(t *testing.T) {
	tr := NewTracer(16)
	base := time.Now()
	tr.Span("newview", "region", 0, base, 2*time.Millisecond, Arg{"ops", 128})
	tr.Span("newview", "region", 1, base.Add(time.Millisecond), time.Millisecond)
	tr.Instant("rebalance", "schedule", -1, Arg{"imbalance", 0.25})
	var b strings.Builder
	if err := tr.WriteJSON(&b); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal([]byte(b.String()), &doc); err != nil {
		t.Fatalf("trace output is not valid JSON: %v\n%s", err, b.String())
	}
	var complete, instant, meta int
	for _, ev := range doc.TraceEvents {
		switch ev["ph"] {
		case "X":
			complete++
			if ev["dur"].(float64) <= 0 {
				t.Errorf("complete event with non-positive dur: %v", ev)
			}
		case "i":
			instant++
		case "M":
			meta++
			if ev["name"] != "thread_name" {
				t.Errorf("unexpected metadata event: %v", ev)
			}
		}
	}
	if complete != 2 || instant != 1 {
		t.Fatalf("events: %d complete, %d instant; want 2, 1", complete, instant)
	}
	if meta != 3 { // worker 0, worker 1, process (-1)
		t.Fatalf("thread_name metadata events = %d, want 3", meta)
	}
}

func TestTracerBoundedDrops(t *testing.T) {
	tr := NewTracer(2)
	for i := 0; i < 5; i++ {
		tr.Instant("e", "t", 0)
	}
	if tr.Len() != 2 {
		t.Fatalf("len = %d, want 2", tr.Len())
	}
	if tr.Dropped() != 3 {
		t.Fatalf("dropped = %d, want 3", tr.Dropped())
	}
}

func TestNilTracerSafe(t *testing.T) {
	var tr *Tracer
	tr.Span("x", "y", 0, time.Now(), time.Second)
	tr.Instant("x", "y", 0)
	if tr.Len() != 0 || tr.Dropped() != 0 {
		t.Fatal("nil tracer must be inert")
	}
}
