package obs

import (
	"fmt"
	"io"
	"sort"
	"strings"
	"sync"
	"time"
)

// Arg is one numeric span annotation (ops, steals, patterns, ...). Chrome's
// trace viewer renders args in the span detail pane.
type Arg struct {
	Key   string
	Value float64
}

// traceEvent is one buffered event. Complete ("X") events carry dur >= 0;
// instant ("i") events carry dur < 0.
type traceEvent struct {
	name string
	cat  string
	tid  int
	ts   time.Time
	dur  time.Duration // < 0 for instant events
	args []Arg
}

// Tracer records region/phase/analysis lifecycle spans into a bounded
// in-memory buffer and serializes them as Chrome trace-event JSON
// (chrome://tracing or Perfetto loadable). Spans are recorded at region
// boundaries — a few per parallel region, never per pattern — so the
// allocation cost of buffering is irrelevant to kernel throughput. When the
// buffer is full further events are dropped and counted; Dropped reports the
// loss. All methods are safe for concurrent use.
type Tracer struct {
	mu      sync.Mutex
	events  []traceEvent
	cap     int
	dropped int64
}

// DefaultTraceCapacity is the event-buffer bound used when NewTracer is given
// a non-positive capacity. At one span per worker per region this covers
// hundreds of thousands of regions — far past any single analysis.
const DefaultTraceCapacity = 1 << 16

// NewTracer creates a tracer buffering at most capacity events; capacity <= 0
// uses DefaultTraceCapacity.
func NewTracer(capacity int) *Tracer {
	if capacity <= 0 {
		capacity = DefaultTraceCapacity
	}
	return &Tracer{cap: capacity}
}

// record appends one event, or counts a drop when the buffer is full.
func (t *Tracer) record(ev traceEvent) {
	t.mu.Lock()
	if len(t.events) >= t.cap {
		t.dropped++
	} else {
		t.events = append(t.events, ev)
	}
	t.mu.Unlock()
}

// Span records a complete event: a named span of duration d starting at
// start, on virtual thread tid (worker index; -1 for process-level spans).
func (t *Tracer) Span(name, cat string, tid int, start time.Time, d time.Duration, args ...Arg) {
	if t == nil {
		return
	}
	if d < 0 {
		d = 0
	}
	t.record(traceEvent{name: name, cat: cat, tid: tid, ts: start, dur: d, args: args})
}

// Instant records a zero-duration marker (rebalance swaps, lifecycle edges)
// at the current time.
func (t *Tracer) Instant(name, cat string, tid int, args ...Arg) {
	if t == nil {
		return
	}
	t.record(traceEvent{name: name, cat: cat, tid: tid, ts: time.Now(), dur: -1, args: args})
}

// Len reports the number of buffered events.
func (t *Tracer) Len() int {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.events)
}

// Dropped reports how many events were discarded because the buffer was full.
func (t *Tracer) Dropped() int64 {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.dropped
}

// jsonEscape escapes a string for embedding in a JSON string literal.
func jsonEscape(s string) string {
	var b strings.Builder
	for _, r := range s {
		switch r {
		case '"':
			b.WriteString(`\"`)
		case '\\':
			b.WriteString(`\\`)
		case '\n':
			b.WriteString(`\n`)
		case '\t':
			b.WriteString(`\t`)
		default:
			if r < 0x20 {
				fmt.Fprintf(&b, `\u%04x`, r)
			} else {
				b.WriteRune(r)
			}
		}
	}
	return b.String()
}

// WriteJSON serializes the buffered events as a Chrome trace-event file:
// {"traceEvents":[...]} with "X" complete events (ts/dur in microseconds,
// relative to the earliest buffered timestamp), "i" instant events, and one
// "M" thread_name metadata event per worker tid so timelines are labeled
// "worker N". The buffer is left intact; WriteJSON may be called repeatedly.
func (t *Tracer) WriteJSON(w io.Writer) error {
	t.mu.Lock()
	events := append([]traceEvent(nil), t.events...)
	t.mu.Unlock()

	var base time.Time
	tids := map[int]bool{}
	for i, ev := range events {
		if i == 0 || ev.ts.Before(base) {
			base = ev.ts
		}
		tids[ev.tid] = true
	}
	var b strings.Builder
	b.WriteString(`{"traceEvents":[`)
	first := true
	sortedTids := make([]int, 0, len(tids))
	for tid := range tids {
		sortedTids = append(sortedTids, tid)
	}
	sort.Ints(sortedTids)
	for _, tid := range sortedTids {
		name := fmt.Sprintf("worker %d", tid)
		if tid < 0 {
			name = "process"
		}
		if !first {
			b.WriteByte(',')
		}
		first = false
		fmt.Fprintf(&b, `{"name":"thread_name","ph":"M","pid":1,"tid":%d,"args":{"name":"%s"}}`, tid, jsonEscape(name))
	}
	for _, ev := range events {
		if !first {
			b.WriteByte(',')
		}
		first = false
		ts := float64(ev.ts.Sub(base)) / float64(time.Microsecond)
		if ev.dur < 0 {
			fmt.Fprintf(&b, `{"name":"%s","cat":"%s","ph":"i","s":"t","pid":1,"tid":%d,"ts":%.3f`,
				jsonEscape(ev.name), jsonEscape(ev.cat), ev.tid, ts)
		} else {
			fmt.Fprintf(&b, `{"name":"%s","cat":"%s","ph":"X","pid":1,"tid":%d,"ts":%.3f,"dur":%.3f`,
				jsonEscape(ev.name), jsonEscape(ev.cat), ev.tid, ts,
				float64(ev.dur)/float64(time.Microsecond))
		}
		if len(ev.args) > 0 {
			b.WriteString(`,"args":{`)
			for i, a := range ev.args {
				if i > 0 {
					b.WriteByte(',')
				}
				fmt.Fprintf(&b, `"%s":%s`, jsonEscape(a.Key), formatValue(a.Value))
			}
			b.WriteByte('}')
		}
		b.WriteByte('}')
	}
	b.WriteString(`]}`)
	_, err := io.WriteString(w, b.String())
	return err
}
