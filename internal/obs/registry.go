// Package obs is the repo's observability layer: a stdlib-only metrics
// registry (counters, gauges, fixed-bucket histograms) with Prometheus
// text-format exposition, plus a lightweight span tracer that exports
// Chrome-trace-event JSON (see trace.go).
//
// Design constraints, in order:
//
//  1. Updates are lock-free and allocation-free. Counter.Add, Gauge.Set, and
//     Histogram.Observe are single atomic operations (a CAS loop for float64
//     adds) on pre-resolved series handles, so instrumented code paths pay a
//     few nanoseconds and zero garbage. The registry lock is taken only at
//     registration and exposition time.
//  2. Registration is idempotent: asking for an existing (name, labels)
//     series returns the same handle, so per-session collectors over one
//     shared registry compose without double counting. Re-registering a name
//     with a different metric type or bucket layout is a programming error
//     and panics.
//  3. Hot kernel paths never touch a metric directly. Per-worker counters
//     accumulate in parallel.WorkerCtx scratch and are folded into the
//     registry once per region, master-side, after the barrier (see
//     parallel.MetricsCollector) — which is why the //plk:hotpath analyzer
//     and the perf-regression gates hold with metrics always on.
package obs

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
)

// Label is one metric dimension. Series identity is (name, labels) with
// labels compared in the order given, so register a family's series with a
// consistent label order.
type Label struct {
	Key, Value string
}

// Metric kinds, in Prometheus TYPE vocabulary.
const (
	kindCounter   = "counter"
	kindGauge     = "gauge"
	kindHistogram = "histogram"
)

// series is one (name, labels) time series. Counters and gauges store their
// value as float64 bits in bits; histograms use counts (one slot per bucket
// plus the +Inf overflow) and sum. Func-backed series read fn at collection
// time instead.
type series struct {
	labels []Label
	key    string
	bits   atomic.Uint64
	counts []atomic.Uint64
	sum    atomic.Uint64
	fn     func() float64
}

// addBits CAS-adds v to a float64-bits atomic.
func addBits(a *atomic.Uint64, v float64) {
	for {
		old := a.Load()
		if a.CompareAndSwap(old, math.Float64bits(math.Float64frombits(old)+v)) {
			return
		}
	}
}

// family is one named metric family: shared help/kind/buckets plus its
// series in registration order.
type family struct {
	name, help, kind string
	buckets          []float64
	series           []*series
	index            map[string]*series
}

// Registry holds metric families and serves them in Prometheus text format.
// The zero value is not usable; create with NewRegistry. All methods are safe
// for concurrent use.
type Registry struct {
	mu       sync.Mutex
	families map[string]*family
	names    []string // registration order; exposition sorts
}

// NewRegistry creates an empty registry.
func NewRegistry() *Registry {
	return &Registry{families: make(map[string]*family)}
}

// labelKey serializes labels for series identity.
func labelKey(labels []Label) string {
	if len(labels) == 0 {
		return ""
	}
	var b strings.Builder
	for _, l := range labels {
		b.WriteString(l.Key)
		b.WriteByte(1)
		b.WriteString(l.Value)
		b.WriteByte(2)
	}
	return b.String()
}

// register resolves or creates the (name, labels) series of the given kind.
// Caller-visible invariants: same (name, labels) always yields the same
// series; a kind or bucket mismatch on an existing family panics.
func (r *Registry) register(kind, name, help string, buckets []float64, labels []Label) *series {
	r.mu.Lock()
	defer r.mu.Unlock()
	f := r.families[name]
	if f == nil {
		f = &family{name: name, help: help, kind: kind, buckets: buckets, index: make(map[string]*series)}
		r.families[name] = f
		r.names = append(r.names, name)
	} else if f.kind != kind {
		panic(fmt.Sprintf("obs: metric %q re-registered as %s (was %s)", name, kind, f.kind))
	} else if kind == kindHistogram && len(f.buckets) != len(buckets) {
		panic(fmt.Sprintf("obs: histogram %q re-registered with %d buckets (was %d)", name, len(buckets), len(f.buckets)))
	}
	key := labelKey(labels)
	if s := f.index[key]; s != nil {
		return s
	}
	s := &series{labels: append([]Label(nil), labels...), key: key}
	if kind == kindHistogram {
		s.counts = make([]atomic.Uint64, len(buckets)+1)
	}
	f.series = append(f.series, s)
	f.index[key] = s
	return s
}

// Counter is a monotonically increasing metric. Add and Inc are atomic and
// allocation-free.
type Counter struct{ s *series }

// Counter registers (or resolves) a counter series.
func (r *Registry) Counter(name, help string, labels ...Label) *Counter {
	return &Counter{r.register(kindCounter, name, help, nil, labels)}
}

// Add increments the counter by v (negative deltas are a caller bug and are
// applied as-is; counters here trust their instrumentation sites).
func (c *Counter) Add(v float64) { addBits(&c.s.bits, v) }

// Inc increments the counter by one.
func (c *Counter) Inc() { c.Add(1) }

// Value reads the current total.
func (c *Counter) Value() float64 { return math.Float64frombits(c.s.bits.Load()) }

// Gauge is a metric that can go up and down.
type Gauge struct{ s *series }

// Gauge registers (or resolves) a gauge series.
func (r *Registry) Gauge(name, help string, labels ...Label) *Gauge {
	return &Gauge{r.register(kindGauge, name, help, nil, labels)}
}

// Set stores v.
func (g *Gauge) Set(v float64) { g.s.bits.Store(math.Float64bits(v)) }

// Add adjusts the gauge by v.
func (g *Gauge) Add(v float64) { addBits(&g.s.bits, v) }

// Value reads the current value.
func (g *Gauge) Value() float64 { return math.Float64frombits(g.s.bits.Load()) }

// Histogram is a fixed-bucket distribution. Observe is atomic and
// allocation-free (a linear scan over the bucket bounds plus two atomics).
type Histogram struct {
	s      *series
	bounds []float64
}

// Histogram registers (or resolves) a histogram series over the given
// ascending upper bounds (+Inf is implicit). The bounds slice is captured;
// callers must not mutate it.
func (r *Registry) Histogram(name, help string, buckets []float64, labels ...Label) *Histogram {
	return &Histogram{s: r.register(kindHistogram, name, help, buckets, labels), bounds: buckets}
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	i := 0
	for i < len(h.bounds) && v > h.bounds[i] {
		i++
	}
	h.s.counts[i].Add(1)
	addBits(&h.s.sum, v)
}

// Count reads the total observation count.
func (h *Histogram) Count() uint64 {
	var n uint64
	for i := range h.s.counts {
		n += h.s.counts[i].Load()
	}
	return n
}

// Sum reads the sum of all observed values.
func (h *Histogram) Sum() float64 { return math.Float64frombits(h.s.sum.Load()) }

// CounterFunc registers a counter whose value is computed by fn at collection
// time — the bridge for subsystems that already keep their own counters
// (cache hits, admission rejections): the scrape reads the authoritative
// counter instead of double accounting.
func (r *Registry) CounterFunc(name, help string, fn func() float64, labels ...Label) {
	r.register(kindCounter, name, help, nil, labels).fn = fn
}

// GaugeFunc registers a gauge computed by fn at collection time.
func (r *Registry) GaugeFunc(name, help string, fn func() float64, labels ...Label) {
	r.register(kindGauge, name, help, nil, labels).fn = fn
}

// Sample is one flattened sample from Snapshot: histograms contribute one
// <name>_sum and one <name>_count sample plus one <name>_bucket sample per
// bound (with its "le" label), matching the exposition format line for line.
type Sample struct {
	// Name is the sample name (family name, or family name plus the
	// _sum/_count/_bucket histogram suffix).
	Name string
	// Labels are the series labels (including "le" on bucket samples).
	Labels []Label
	// Kind is the owning family's type: "counter", "gauge", or "histogram".
	Kind string
	// Value is the sample value.
	Value float64
}

// formatBound renders a histogram upper bound the way exposition does.
func formatBound(b float64) string {
	if math.IsInf(b, 1) {
		return "+Inf"
	}
	return strconv.FormatFloat(b, 'g', -1, 64)
}

// Snapshot flattens every series into samples, sorted by name then label key.
// Func-backed series are evaluated now.
func (r *Registry) Snapshot() []Sample {
	r.mu.Lock()
	defer r.mu.Unlock()
	var out []Sample
	for _, name := range r.sortedNames() {
		f := r.families[name]
		for _, s := range f.sortedSeries() {
			switch {
			case s.fn != nil:
				out = append(out, Sample{Name: f.name, Labels: s.labels, Kind: f.kind, Value: s.fn()})
			case f.kind == kindHistogram:
				cum := uint64(0)
				for i, b := range f.buckets {
					cum += s.counts[i].Load()
					out = append(out, Sample{
						Name: f.name + "_bucket", Kind: f.kind,
						Labels: append(append([]Label(nil), s.labels...), Label{"le", formatBound(b)}),
						Value:  float64(cum),
					})
				}
				cum += s.counts[len(f.buckets)].Load()
				out = append(out, Sample{
					Name: f.name + "_bucket", Kind: f.kind,
					Labels: append(append([]Label(nil), s.labels...), Label{"le", "+Inf"}),
					Value:  float64(cum),
				})
				out = append(out, Sample{Name: f.name + "_sum", Labels: s.labels, Kind: f.kind, Value: math.Float64frombits(s.sum.Load())})
				out = append(out, Sample{Name: f.name + "_count", Labels: s.labels, Kind: f.kind, Value: float64(cum)})
			default:
				out = append(out, Sample{Name: f.name, Labels: s.labels, Kind: f.kind, Value: math.Float64frombits(s.bits.Load())})
			}
		}
	}
	return out
}

// sortedNames returns family names sorted for deterministic output. Caller
// holds r.mu.
func (r *Registry) sortedNames() []string {
	names := append([]string(nil), r.names...)
	sort.Strings(names)
	return names
}

// sortedSeries returns the family's series sorted by label key.
func (f *family) sortedSeries() []*series {
	ss := append([]*series(nil), f.series...)
	sort.Slice(ss, func(i, j int) bool { return ss[i].key < ss[j].key })
	return ss
}

// escapeLabel escapes a label value per the exposition format.
func escapeLabel(v string) string {
	v = strings.ReplaceAll(v, `\`, `\\`)
	v = strings.ReplaceAll(v, "\n", `\n`)
	v = strings.ReplaceAll(v, `"`, `\"`)
	return v
}

// writeLabels renders {k="v",...} with an optional extra label appended.
func writeLabels(b *strings.Builder, labels []Label, extra ...Label) {
	if len(labels) == 0 && len(extra) == 0 {
		return
	}
	b.WriteByte('{')
	first := true
	for _, l := range append(append([]Label(nil), labels...), extra...) {
		if !first {
			b.WriteByte(',')
		}
		first = false
		b.WriteString(l.Key)
		b.WriteString(`="`)
		b.WriteString(escapeLabel(l.Value))
		b.WriteByte('"')
	}
	b.WriteByte('}')
}

// formatValue renders a sample value the way Prometheus expects.
func formatValue(v float64) string {
	switch {
	case math.IsInf(v, 1):
		return "+Inf"
	case math.IsInf(v, -1):
		return "-Inf"
	case math.IsNaN(v):
		return "NaN"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// WriteText serializes the registry in Prometheus text exposition format
// (# HELP / # TYPE headers, families sorted by name, series by label key).
func (r *Registry) WriteText(w io.Writer) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	var b strings.Builder
	for _, name := range r.sortedNames() {
		f := r.families[name]
		fmt.Fprintf(&b, "# HELP %s %s\n# TYPE %s %s\n", f.name, f.help, f.name, f.kind)
		for _, s := range f.sortedSeries() {
			switch {
			case s.fn != nil:
				b.WriteString(f.name)
				writeLabels(&b, s.labels)
				b.WriteByte(' ')
				b.WriteString(formatValue(s.fn()))
				b.WriteByte('\n')
			case f.kind == kindHistogram:
				cum := uint64(0)
				for i, bound := range f.buckets {
					cum += s.counts[i].Load()
					b.WriteString(f.name)
					b.WriteString("_bucket")
					writeLabels(&b, s.labels, Label{"le", formatBound(bound)})
					fmt.Fprintf(&b, " %d\n", cum)
				}
				cum += s.counts[len(f.buckets)].Load()
				b.WriteString(f.name)
				b.WriteString("_bucket")
				writeLabels(&b, s.labels, Label{"le", "+Inf"})
				fmt.Fprintf(&b, " %d\n", cum)
				b.WriteString(f.name)
				b.WriteString("_sum")
				writeLabels(&b, s.labels)
				b.WriteByte(' ')
				b.WriteString(formatValue(math.Float64frombits(s.sum.Load())))
				b.WriteByte('\n')
				b.WriteString(f.name)
				b.WriteString("_count")
				writeLabels(&b, s.labels)
				fmt.Fprintf(&b, " %d\n", cum)
			default:
				b.WriteString(f.name)
				writeLabels(&b, s.labels)
				b.WriteByte(' ')
				b.WriteString(formatValue(math.Float64frombits(s.bits.Load())))
				b.WriteByte('\n')
			}
		}
	}
	_, err := io.WriteString(w, b.String())
	return err
}
