// Package search implements a RAxML-style lazy SPR (subtree pruning and
// regrafting) maximum-likelihood tree search on top of the likelihood engine
// and the optimizer package. The search is deterministic for a fixed starting
// tree, which the paper relies on to compare parallelization strategies on
// identical work ("full ML tree searches (on a fixed input tree for
// reproducibility)").
//
// Per improvement round, every directed subtree is pruned in turn; insertion
// into every branch within a configurable radius of the pruning point is
// evaluated with a partial update (one newview at the insertion node) plus a
// short Newton-Raphson optimization of the insertion branch — the mixture of
// narrow-and-frequent branch-length work that makes tree search the paper's
// "practically most relevant case" for the load-balance problem.
//
// The package is region-structured: cancellation is consulted only at
// round and insertion boundaries (//plk:regionboundary functions), never
// mid-kernel.
//
//plk:regions
package search

import (
	"context"
	"math"

	"phylo/internal/core"
	"phylo/internal/opt"
	"phylo/internal/tree"
)

// Config tunes the SPR search.
type Config struct {
	// Opt configures branch/model optimization (and selects oldPAR/newPAR).
	Opt opt.Config
	// MaxRounds caps SPR improvement rounds.
	MaxRounds int
	// Radius is the maximum insertion distance from the pruning point.
	Radius int
	// Epsilon stops the search when a full round improves lnL by less.
	Epsilon float64
	// MinImprovement is the margin an SPR move must beat the reinsertion
	// baseline by to be applied.
	MinImprovement float64
	// ModelOptEvery interleaves a model-optimization phase before round k,
	// 2k, ... (0 disables; 1 = every round). Mirrors how search algorithms
	// "alternate between tree search phases and model optimization phases".
	ModelOptEvery int
	// Progress, if non-nil, is called after every completed SPR round with
	// the 1-based round number, the round's log likelihood, and the
	// cumulative applied/tried move counts. It runs between parallel
	// regions on the searching goroutine and must not call into the engine.
	Progress func(round int, lnl float64, movesApplied, movesTried int)

	// RoundEnd, if non-nil, is called after every completed SPR round, after
	// Progress. It is a maintenance hook running at a region boundary and may
	// call the engine's between-region entry points (the session facade
	// triggers measured-schedule rebalancing here).
	RoundEnd func()
}

// DefaultConfig returns production defaults (radius and epsilon follow
// RAxML's fast defaults).
func DefaultConfig(strategy opt.Strategy) Config {
	return Config{
		Opt:            opt.DefaultConfig(strategy),
		MaxRounds:      5,
		Radius:         5,
		Epsilon:        0.1,
		MinImprovement: 0.01,
		ModelOptEvery:  0,
	}
}

// Result reports a finished search.
type Result struct {
	LnL          float64
	Rounds       int
	MovesApplied int
	MovesTried   int
}

// Searcher holds the search state over one engine.
type Searcher struct {
	E   *core.Engine
	Cfg Config
	o   *opt.Optimizer
	ctx context.Context

	best      float64
	moves     int
	tried     int
	zConnSave []float64
}

// New prepares a searcher.
func New(e *core.Engine, cfg Config) *Searcher {
	return &Searcher{E: e, Cfg: cfg, o: opt.New(e, cfg.Opt)}
}

// cancelled reports whether the search context has been cancelled; it is
// polled at synchronization-region boundaries, never inside a region.
//
//plk:regionboundary
func (s *Searcher) cancelled() bool {
	return s.ctx != nil && s.ctx.Err() != nil
}

// Run executes the SPR search and returns the best log likelihood found.
// When ctx is cancelled mid-search the run winds down at the next region
// boundary: any pruned subtree is restored first, the tree is re-smoothed
// into a consistent state, and the returned Result carries the exact score
// of that tree alongside the context's error — a usable partial result.
//
//plk:regionboundary
func (s *Searcher) Run(ctx context.Context) (Result, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	s.ctx = ctx
	s.best = s.o.SmoothAll(ctx)
	rounds := 0
	for r := 0; r < s.Cfg.MaxRounds && !s.cancelled(); r++ {
		rounds++
		if s.Cfg.ModelOptEvery > 0 && r%s.Cfg.ModelOptEvery == 0 {
			lnl, _, _ := s.o.OptimizeModel(ctx)
			s.best = lnl
		}
		prev := s.best
		s.sprRound()
		s.E.InvalidateCLVs()
		s.best = s.o.SmoothAll(ctx)
		if s.Cfg.Progress != nil {
			s.Cfg.Progress(rounds, s.best, s.moves, s.tried)
		}
		if s.Cfg.RoundEnd != nil {
			s.Cfg.RoundEnd()
		}
		if s.best-prev < s.Cfg.Epsilon {
			break
		}
	}
	return Result{LnL: s.best, Rounds: rounds, MovesApplied: s.moves, MovesTried: s.tried}, ctx.Err()
}

// sprRound prunes every directed subtree once and applies the best improving
// insertion (if any) for each.
func (s *Searcher) sprRound() {
	// Materialize the candidate list up front: topology changes during the
	// round, but inner records persist.
	var candidates []*tree.Node
	for _, in := range s.E.Tree.Inner {
		candidates = append(candidates, in, in.Next, in.Next.Next)
	}
	for _, v := range candidates {
		if s.cancelled() {
			return
		}
		s.trySubtree(v)
	}
}

// trySubtree prunes the subtree behind v.Back, scans insertion branches
// within the radius, and either applies the best improving move or restores
// the original topology exactly.
func (s *Searcher) trySubtree(v *tree.Node) {
	e := s.E
	b1 := v.Next.Back
	b2 := v.Next.Next.Back
	// Freshly orient everything; X flags cannot be trusted across the
	// topology edits of previous candidates.
	e.InvalidateCLVs()
	e.TraverseRoot(v, true, nil)

	// Save restore state: original neighbor slices and values.
	z1 := v.Next.Z
	z2 := v.Next.Next.Z
	z1v := append([]float64(nil), z1...)
	z2v := append([]float64(nil), z2...)
	s.zConnSave = append(s.zConnSave[:0], v.Z...)

	// Prune: fuse the two neighbor branches.
	zf := make([]float64, len(z1))
	for k := range zf {
		zf[k] = clampBL(z1[k] + z2[k])
	}
	tree.Connect(b1, b2, zf)
	v.Next.Back = nil
	v.Next.Next.Back = nil

	// Orient the remaining tree towards the pruning site.
	clearXComponent(b1)
	if !b1.IsTip() {
		e.Traverse(b1, true, nil)
	}
	if !b2.IsTip() {
		e.Traverse(b2, true, nil)
	}

	// Baseline: re-insertion into the fused branch (the null move).
	ref := s.tryInsert(v, b1)
	bestLnL := ref
	var bestU *tree.Node
	scan := func(u *tree.Node, depth int) {}
	scan = func(u *tree.Node, depth int) {
		if s.cancelled() {
			// Stop descending; trySubtree still restores the pruned subtree
			// below, so cancellation never leaves a mutilated topology.
			return
		}
		if lnl := s.tryInsert(v, u); lnl > bestLnL {
			bestLnL = lnl
			bestU = u
		}
		w := u.Back
		if w.IsTip() || depth >= s.Cfg.Radius {
			return
		}
		// Descend while maintaining the CLV invariants: one newview before
		// entering each child branch and one on exit to restore the upward
		// view for siblings and ancestors.
		s.newview1(w.Next)
		scan(w.Next, depth+1)
		s.newview1(w.Next.Next)
		scan(w.Next.Next, depth+1)
		s.newview1(w)
	}
	if !b2.IsTip() {
		s.newview1(b2.Next)
		scan(b2.Next, 1)
		s.newview1(b2.Next.Next)
		scan(b2.Next.Next, 1)
		s.newview1(b2)
	}
	if !b1.IsTip() {
		s.newview1(b1.Next)
		scan(b1.Next, 1)
		s.newview1(b1.Next.Next)
		scan(b1.Next.Next, 1)
		s.newview1(b1)
	}

	if bestU != nil && bestLnL > ref+s.Cfg.MinImprovement {
		// Apply: insert v into the winning branch for good.
		s.moves++
		uB := bestU.Back
		zu := bestU.Z
		za := make([]float64, len(zu))
		zb := make([]float64, len(zu))
		for k := range zu {
			za[k] = clampBL(zu[k] / 2)
			zb[k] = clampBL(zu[k] / 2)
		}
		tree.Connect(v.Next, bestU, za)
		tree.Connect(v.Next.Next, uB, zb)
		copy(v.Z, s.zConnSave)
		e.InvalidateCLVs()
		e.TraverseRoot(v, true, nil)
		// Local smoothing of the three branches around the insertion point
		// (the lazy-SPR region the paper's Figure 1 sketches).
		s.o.OptimizeBranch(v)
		s.o.OptimizeBranch(v.Next)
		s.o.OptimizeBranch(v.Next.Next)
		return
	}
	// Restore the original topology and branch lengths exactly.
	tree.Connect(v.Next, b1, z1)
	copy(z1, z1v)
	tree.Connect(v.Next.Next, b2, z2)
	copy(z2, z2v)
	copy(v.Z, s.zConnSave)
}

// tryInsert splices v into the branch (u, u.Back), scores the insertion with
// one newview, a short Newton-Raphson pass on the connecting branch, and one
// evaluation, then undoes the splice. The caller guarantees the CLV at u
// towards u.Back and at u.Back towards u are valid.
func (s *Searcher) tryInsert(v, u *tree.Node) float64 {
	if s.cancelled() {
		// Score nothing: -Inf never beats the reinsertion baseline, so the
		// caller takes the restore path untouched.
		return math.Inf(-1)
	}
	s.tried++
	e := s.E
	uB := u.Back
	zu := u.Z
	zuv := append([]float64(nil), zu...)
	za := make([]float64, len(zu))
	zb := make([]float64, len(zu))
	for k := range zu {
		za[k] = clampBL(zu[k] / 2)
		zb[k] = clampBL(zu[k] / 2)
	}
	tree.Connect(v.Next, u, za)
	tree.Connect(v.Next.Next, uB, zb)
	// One explicit newview at the insertion node, then optimize the branch
	// connecting the pruned subtree and evaluate across it.
	s.newview1(v)
	s.o.OptimizeBranch(v)
	lnl, _ := e.Evaluate(v, nil)

	// Undo: reconnect the target branch with its original slice and values,
	// leave v dangling, restore the subtree connection length.
	tree.Connect(u, uB, zu)
	copy(zu, zuv)
	v.Next.Back = nil
	v.Next.Next.Back = nil
	copy(v.Z, s.zConnSave)
	return lnl
}

// newview1 executes a single explicit newview step at inner record p.
func (s *Searcher) newview1(p *tree.Node) {
	s.E.ExecuteSteps([]tree.TraversalStep{{P: p, Q: p.Next.Back, R: p.Next.Next.Back}}, nil)
}

// clearXComponent clears CLV orientation flags in the connected component
// containing start (the remaining tree after pruning), leaving the pruned
// subtree's valid orientations untouched.
func clearXComponent(start *tree.Node) {
	seen := make(map[int]bool)
	var walk func(p *tree.Node)
	walk = func(p *tree.Node) {
		if p == nil || seen[p.ID] {
			return
		}
		seen[p.ID] = true
		if !p.IsTip() {
			p.X = false
			p.Next.X = false
			p.Next.Next.X = false
			walk(p.Next.Back)
			walk(p.Next.Next.Back)
		}
		walk(p.Back)
	}
	walk(start)
}

func clampBL(v float64) float64 {
	const min, max = 1e-8, 64.0
	return math.Min(max, math.Max(min, v))
}
