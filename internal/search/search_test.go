package search

import (
	"context"
	"fmt"
	"math"
	"math/rand"
	"testing"

	"phylo/internal/alignment"
	"phylo/internal/core"
	"phylo/internal/model"
	"phylo/internal/opt"
	"phylo/internal/parallel"
	"phylo/internal/tree"
)

func taxaNames(n int) []string {
	out := make([]string, n)
	for i := range out {
		out[i] = fmt.Sprintf("t%d", i)
	}
	return out
}

// simulateOnTree generates data that *fits a known tree*, so a search started
// from a scrambled tree has signal to recover: states are evolved down the
// generating topology under JC with the given branch scale.
func simulateOnTree(t *testing.T, gen *tree.Tree, nSites int, seed int64) *alignment.Alignment {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	n := gen.NumTips()
	seqs := make([][]byte, n)
	for i := range seqs {
		seqs[i] = make([]byte, nSites)
	}
	var evolve func(p *tree.Node, state int, site int)
	evolve = func(p *tree.Node, state int, site int) {
		if p.IsTip() {
			seqs[p.Index][site] = "ACGT"[state]
			return
		}
		for _, child := range []*tree.Node{p.Next.Back, p.Next.Next.Back} {
			ns := jcEvolve(rng, state, childBranch(p, child))
			evolve(child, ns, site)
		}
	}
	root := gen.Tips[0].Back
	for site := 0; site < nSites; site++ {
		state := rng.Intn(4)
		// Evolve down both sides of the root branch.
		tipState := jcEvolve(rng, state, gen.Tips[0].Z[0])
		seqs[0][site] = "ACGT"[tipState]
		evolve(root, state, site)
	}
	a, err := alignment.New(taxaNames(n), seqs)
	if err != nil {
		t.Fatal(err)
	}
	return a
}

func childBranch(p, child *tree.Node) float64 {
	if p.Next.Back == child {
		return p.Next.Z[0]
	}
	return p.Next.Next.Z[0]
}

func jcEvolve(rng *rand.Rand, state int, bl float64) int {
	pSame := 0.25 + 0.75*math.Exp(-4.0/3.0*bl)
	if rng.Float64() < pSame {
		return state
	}
	// Uniform over the other three states.
	ns := rng.Intn(3)
	if ns >= state {
		ns++
	}
	return ns
}

func buildSearch(t *testing.T, nTaxa, nSites int, strategy opt.Strategy, exec parallel.Executor, genSeed, startSeed int64) (*Searcher, *core.Engine, *tree.Tree) {
	t.Helper()
	gen, err := tree.Random(taxaNames(nTaxa), 1, tree.RandomOptions{Seed: genSeed, MeanBranchLength: 0.15})
	if err != nil {
		t.Fatal(err)
	}
	a := simulateOnTree(t, gen, nSites, genSeed+1000)
	d, err := alignment.Compress(a, alignment.SinglePartition(a, alignment.DNA, ""), alignment.CompressOptions{})
	if err != nil {
		t.Fatal(err)
	}
	m, err := model.JC69(4, 1.0)
	if err != nil {
		t.Fatal(err)
	}
	start, err := tree.Random(taxaNames(nTaxa), 1, tree.RandomOptions{Seed: startSeed})
	if err != nil {
		t.Fatal(err)
	}
	eng, err := core.New(d, start, []*model.Model{m}, exec, core.Options{Specialize: true})
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultConfig(strategy)
	cfg.MaxRounds = 3
	cfg.Radius = 4
	return New(eng, cfg), eng, start
}

func TestSearchImprovesLikelihood(t *testing.T) {
	s, eng, _ := buildSearch(t, 10, 200, opt.NewPar, parallel.NewSequential(), 5, 99)
	before := eng.LogLikelihood()
	res, _ := s.Run(context.Background())
	if res.LnL < before {
		t.Errorf("search decreased lnL: %v -> %v", before, res.LnL)
	}
	if res.MovesTried == 0 {
		t.Error("search tried no moves")
	}
	if res.MovesApplied == 0 {
		t.Error("random start vs simulated data: expected at least one improving SPR move")
	}
	// The final likelihood must match a fresh evaluation of the final tree.
	eng.InvalidateCLVs()
	if got := eng.LogLikelihood(); math.Abs(got-res.LnL) > 1e-6*math.Abs(got) {
		t.Errorf("reported lnL %v does not match final tree lnL %v", res.LnL, got)
	}
}

func TestSearchRecoversGeneratingTreeScore(t *testing.T) {
	// Searching from a random start must come close to (or beat) the
	// likelihood of the true generating topology.
	gen, _ := tree.Random(taxaNames(8), 1, tree.RandomOptions{Seed: 7, MeanBranchLength: 0.2})
	a := simulateOnTree(t, gen, 400, 77)
	d, _ := alignment.Compress(a, alignment.SinglePartition(a, alignment.DNA, ""), alignment.CompressOptions{})
	m, _ := model.JC69(4, 1.0)

	// Score the generating tree (with optimized branch lengths).
	genCopy, _ := tree.ParseNewick(tree.WriteNewick(gen, 0), taxaNames(8), 1)
	engTrue, err := core.New(d, genCopy, []*model.Model{m}, parallel.NewSequential(), core.Options{Specialize: true})
	if err != nil {
		t.Fatal(err)
	}
	trueLnL := opt.New(engTrue, opt.DefaultConfig(opt.NewPar)).SmoothAll(context.Background())

	start, _ := tree.Random(taxaNames(8), 1, tree.RandomOptions{Seed: 1234})
	eng, err := core.New(d, start, []*model.Model{m.Clone()}, parallel.NewSequential(), core.Options{Specialize: true})
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultConfig(opt.NewPar)
	cfg.MaxRounds = 6
	cfg.Radius = 6
	res, _ := New(eng, cfg).Run(context.Background())
	if res.LnL < trueLnL-5 {
		t.Errorf("search lnL %v far below generating tree lnL %v", res.LnL, trueLnL)
	}
}

func TestSearchDeterministic(t *testing.T) {
	s1, _, tr1 := buildSearch(t, 9, 150, opt.NewPar, parallel.NewSequential(), 3, 42)
	s2, _, tr2 := buildSearch(t, 9, 150, opt.NewPar, parallel.NewSequential(), 3, 42)
	r1, _ := s1.Run(context.Background())
	r2, _ := s2.Run(context.Background())
	if r1.LnL != r2.LnL || r1.MovesApplied != r2.MovesApplied {
		t.Errorf("search not deterministic: %+v vs %+v", r1, r2)
	}
	if tree.WriteNewick(tr1, 0) != tree.WriteNewick(tr2, 0) {
		t.Error("final topologies differ between identical runs")
	}
}

func TestSearchStrategiesFindSameTree(t *testing.T) {
	sOld, _, trOld := buildSearch(t, 9, 150, opt.OldPar, parallel.NewSequential(), 11, 52)
	sNew, _, trNew := buildSearch(t, 9, 150, opt.NewPar, parallel.NewSequential(), 11, 52)
	rOld, _ := sOld.Run(context.Background())
	rNew, _ := sNew.Run(context.Background())
	// Same optima within optimizer tolerance; trees should agree given the
	// deterministic candidate order.
	if math.Abs(rOld.LnL-rNew.LnL) > 1e-3*math.Abs(rOld.LnL) {
		t.Errorf("strategies found different likelihoods: %v vs %v", rOld.LnL, rNew.LnL)
	}
	if tree.WriteNewick(trOld, 0) != tree.WriteNewick(trNew, 0) {
		t.Log("topologies differ slightly between strategies (acceptable within tolerance)")
	}
}

func TestSearchParallelMatchesSequential(t *testing.T) {
	pool, err := parallel.NewPool(3)
	if err != nil {
		t.Fatal(err)
	}
	defer pool.Close()
	sSeq, _, _ := buildSearch(t, 8, 120, opt.NewPar, parallel.NewSequential(), 21, 63)
	sPar, _, _ := buildSearch(t, 8, 120, opt.NewPar, pool, 21, 63)
	rSeq, _ := sSeq.Run(context.Background())
	rPar, _ := sPar.Run(context.Background())
	if math.Abs(rSeq.LnL-rPar.LnL) > 1e-6*math.Abs(rSeq.LnL) {
		t.Errorf("parallel search diverged: %v vs %v", rSeq.LnL, rPar.LnL)
	}
	if rSeq.MovesApplied != rPar.MovesApplied {
		t.Errorf("move counts differ: %d vs %d", rSeq.MovesApplied, rPar.MovesApplied)
	}
}

func TestSearchPreservesTreeValidity(t *testing.T) {
	s, eng, tr := buildSearch(t, 10, 100, opt.NewPar, parallel.NewSequential(), 31, 74)
	s.Run(context.Background())
	if err := tr.Validate(); err != nil {
		t.Fatalf("tree invalid after search: %v", err)
	}
	// All branch lengths within bounds.
	for _, b := range tr.Branches() {
		for k, z := range b.Z {
			if z < model.MinBranchLen || z > model.MaxBranchLen {
				t.Errorf("branch slot %d has out-of-bounds length %v", k, z)
			}
		}
	}
	_ = eng
}

func TestSearchPartitionedPerPartitionBL(t *testing.T) {
	// Multi-partition search with per-partition branch lengths: the paper's
	// headline configuration.
	gen, _ := tree.Random(taxaNames(8), 1, tree.RandomOptions{Seed: 13, MeanBranchLength: 0.15})
	a := simulateOnTree(t, gen, 300, 131)
	parts, err := alignment.UniformPartitions(a, alignment.DNA, 100)
	if err != nil {
		t.Fatal(err)
	}
	d, _ := alignment.Compress(a, parts, alignment.CompressOptions{})
	models := make([]*model.Model, len(d.Parts))
	for i := range models {
		models[i], _ = model.GTR(nil, nil, 4, 0.8)
	}
	start, _ := tree.Random(taxaNames(8), len(d.Parts), tree.RandomOptions{Seed: 17})
	eng, err := core.New(d, start, models, parallel.NewSequential(), core.Options{Specialize: true})
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultConfig(opt.NewPar)
	cfg.MaxRounds = 2
	before := eng.LogLikelihood()
	res, _ := New(eng, cfg).Run(context.Background())
	if res.LnL < before {
		t.Errorf("partitioned search decreased lnL %v -> %v", before, res.LnL)
	}
	if err := start.Validate(); err != nil {
		t.Fatal(err)
	}
}

// TestSearchCancellation: cancelling mid-search returns promptly with the
// context error and a consistent tree whose score matches the reported
// partial result exactly.
func TestSearchCancellation(t *testing.T) {
	s, eng, _ := buildSearch(t, 10, 300, opt.NewPar, parallel.NewSequential(), 47, 48)
	s.Cfg.MaxRounds = 50
	s.Cfg.Epsilon = -1 // never converge: only cancellation can stop it
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	s.Cfg.Progress = func(round int, lnl float64, applied, tried int) {
		if round == 1 {
			cancel()
		}
	}
	res, err := s.Run(ctx)
	if err == nil {
		t.Fatal("expected cancellation error")
	}
	if res.Rounds >= 4 {
		t.Errorf("search ran %d rounds after cancellation in round 1", res.Rounds)
	}
	if math.IsNaN(res.LnL) || math.IsInf(res.LnL, 0) || res.LnL >= 0 {
		t.Errorf("partial lnL = %v", res.LnL)
	}
	// The tree must be left consistent: re-evaluating from scratch gives
	// exactly the reported score.
	eng.InvalidateCLVs()
	if got := eng.LogLikelihood(); got != res.LnL {
		t.Errorf("tree score %v != reported partial %v", got, res.LnL)
	}
}
