// Command plkd serves the phylogenetic likelihood kernel over HTTP: submit
// an alignment once, get a dataset handle backed by the daemon's
// ref-counted, byte-budgeted LRU cache, then evaluate trees and run
// analyses against it. Identical concurrent evaluates coalesce onto one
// kernel run; per-tenant admission control (X-Tenant header) bounds each
// tenant's in-flight work; analysis progress streams over SSE with bounded,
// drop-oldest buffers.
//
// SIGTERM (or one Ctrl-C) drains: new work is rejected with 503 while
// in-flight analyses finish, bounded by -drain-timeout, after which they
// are cancelled at their next synchronization-region boundary. A second
// signal exits immediately with a non-zero status.
//
// Examples:
//
//	plkd -addr 127.0.0.1:8149 -threads 8 -cache-mb 2048
//	plkd -addr 127.0.0.1:0 -addr-file /tmp/plkd.addr   # pick a free port, publish it
//
//	curl -s --data-binary @data.phy 'localhost:8149/v1/datasets?data_type=dna'
//	curl -s localhost:8149/v1/evaluate -H 'Content-Type: application/json' \
//	     -d '{"dataset":"ds_...","seed":42}'
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"time"

	"phylo"
	"phylo/internal/server"
	"phylo/internal/sigctx"
)

func main() {
	var (
		addr       = flag.String("addr", "127.0.0.1:8149", "listen address (port 0 picks a free port)")
		addrFile   = flag.String("addr-file", "", "write the bound address to this file once listening")
		threads    = flag.Int("threads", 1, "worker count every dataset is built for")
		schedFlag  = flag.String("schedule", "weighted", "pattern-to-worker assignment: cyclic | block | weighted | adaptive")
		stealFlag  = flag.Bool("steal", false, "intra-region work stealing on every dataset")
		backendF   = flag.String("backend", "auto", "likelihood kernel backend: auto | generic | fused")
		cats       = flag.Int("cats", 4, "discrete-Gamma category count")
		cacheMB    = flag.Int64("cache-mb", 512, "dataset cache budget in MiB (<0 = unbounded)")
		tenantInfl = flag.Int("tenant-inflight", 2, "per-tenant in-flight work-item quota")
		tenantQ    = flag.Int("tenant-queue", 16, "per-tenant admission queue capacity (0 = fail fast)")
		drainTO    = flag.Duration("drain-timeout", 30*time.Second, "how long a drain waits before cancelling in-flight analyses")
		pprofFlag  = flag.Bool("pprof", false, "mount net/http/pprof under /debug/pprof/ on the daemon mux")
	)
	flag.Parse()
	if err := run(*addr, *addrFile, server.Config{
		Threads:         *threads,
		Steal:           *stealFlag,
		GammaCategories: *cats,
		CacheBytes:      *cacheMB << 20,
		TenantInflight:  *tenantInfl,
		TenantQueue:     *tenantQ,
		EnablePprof:     *pprofFlag,
	}, *schedFlag, *backendF, *drainTO); err != nil {
		fmt.Fprintln(os.Stderr, "plkd:", err)
		os.Exit(1)
	}
}

func run(addr, addrFile string, cfg server.Config, schedName, backendName string, drainTO time.Duration) error {
	strat, err := phylo.ParseScheduleStrategy(schedName)
	if err != nil {
		return err
	}
	cfg.Schedule = strat
	backend, err := phylo.ParseKernelBackend(backendName)
	if err != nil {
		return err
	}
	cfg.Backend = backend

	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	bound := ln.Addr().String()
	if addrFile != "" {
		if err := os.WriteFile(addrFile, []byte(bound+"\n"), 0o644); err != nil {
			ln.Close()
			return err
		}
	}

	srv := server.New(cfg)
	hs := &http.Server{Handler: srv}

	ctx, stop := sigctx.Notify(context.Background(), "plkd")
	defer stop()

	errCh := make(chan error, 1)
	go func() { errCh <- hs.Serve(ln) }()
	fmt.Printf("plkd: listening on %s (threads=%d schedule=%s cache=%dMiB quota=%d/tenant)\n",
		bound, cfg.Threads, schedName, cfg.CacheBytes>>20, cfg.TenantInflight)

	select {
	case err := <-errCh:
		return err
	case <-ctx.Done():
	}

	// Drain: stop accepting connections once in-flight requests finish,
	// while the serving state drains analyses under its own deadline.
	fmt.Println("plkd: draining")
	drainCtx, cancel := context.WithTimeout(context.Background(), drainTO)
	defer cancel()
	drainErr := srv.Drain(drainCtx)
	if err := hs.Shutdown(drainCtx); err != nil && !errors.Is(err, context.DeadlineExceeded) {
		fmt.Fprintln(os.Stderr, "plkd: shutdown:", err)
	}
	if drainErr != nil {
		fmt.Println("plkd: drain deadline passed; in-flight analyses were cancelled")
	} else {
		fmt.Println("plkd: drained cleanly")
	}
	return nil
}
