// Command plkbench times the two hot likelihood kernels — evaluate and
// newview (one full traversal) — on the real goroutine pool at several
// thread counts and writes the results as JSON. CI runs it on every push to
// seed the performance trajectory (BENCH_plk.json artifacts).
//
//	plkbench -scale 0.01 -threads 1,4,8 -out BENCH_plk.json
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"phylo/internal/bench"
)

func main() {
	var (
		scale   = flag.Float64("scale", 0.01, "dataset column scale (d20_20000 grid)")
		seed    = flag.Int64("seed", 42, "simulation seed")
		threads = flag.String("threads", "1,4,8", "comma-separated thread counts")
		out     = flag.String("out", "BENCH_plk.json", "output JSON path (- for stdout)")
	)
	flag.Parse()

	var counts []int
	for _, f := range strings.Split(*threads, ",") {
		t, err := strconv.Atoi(strings.TrimSpace(f))
		if err != nil {
			fatal(fmt.Errorf("bad thread count %q: %w", f, err))
		}
		counts = append(counts, t)
	}
	rep, err := bench.Microbench(counts, *scale, *seed)
	if err != nil {
		fatal(err)
	}
	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		fatal(err)
	}
	data = append(data, '\n')
	if *out == "-" {
		os.Stdout.Write(data)
		return
	}
	if err := os.WriteFile(*out, data, 0o644); err != nil {
		fatal(err)
	}
	for _, kt := range rep.Timings {
		fmt.Printf("T=%-2d evaluate %12.0f ns/op   newview %12.0f ns/op\n",
			kt.Threads, kt.EvaluateNsOp, kt.NewviewNsOp)
	}
	fmt.Printf("wrote %s\n", *out)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "plkbench:", err)
	os.Exit(1)
}
