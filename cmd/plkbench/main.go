// Command plkbench times the hot likelihood kernels — evaluate, newview
// (one full traversal), and the tip-heavy specialized-vs-generic newview
// comparison — on the real goroutine pool at several thread counts and
// writes the results as JSON. CI runs it on every push to seed the
// performance trajectory (BENCH_plk.json artifacts) and to gate against the
// committed baseline:
//
//	plkbench -scale 0.01 -threads 1,4,8 -out BENCH_plk.json
//	plkbench -check BENCH_baseline.json -compare BENCH_plk.json
//
// With -check, any kernel ns/op more than -tolerance (default 20%) above
// the baseline at a matching thread count fails the run with exit code 1.
// With -compare, a previously written report is checked instead of
// re-measuring. Refresh the baseline (on the machine class the gate runs
// on) with:
//
//	go run ./cmd/plkbench -scale 0.01 -threads 1,4,8 -out BENCH_baseline.json
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"strconv"
	"strings"

	"phylo/internal/bench"
	"phylo/internal/core"
	"phylo/internal/obs"
	"phylo/internal/sigctx"
)

func main() {
	var (
		scale      = flag.Float64("scale", 0.01, "dataset column scale (d20_20000 grid)")
		seed       = flag.Int64("seed", 42, "simulation seed")
		threads    = flag.String("threads", "1,4,8", "comma-separated thread counts")
		out        = flag.String("out", "BENCH_plk.json", "output JSON path (- for stdout)")
		check      = flag.String("check", "", "baseline report JSON to gate against (exit 1 on regression)")
		compare    = flag.String("compare", "", "pre-measured report JSON to check instead of re-measuring")
		tolerance  = flag.Float64("tolerance", 0.20, "fractional ns/op regression tolerance for -check")
		backendF   = flag.String("backend", "auto", "kernel backend for the session timings: auto | generic | fused (auto honors PLK_BACKEND, default fused)")
		cpuprofile = flag.String("cpuprofile", "", "write a CPU profile of the measurement run to this file")
		memprofile = flag.String("memprofile", "", "write an allocation (heap) profile to this file at exit")
		metricsF   = flag.Bool("metrics", false, "dump the timing loop's metrics registry (Prometheus text format) to stderr at exit")
		traceOut   = flag.String("trace", "", "write a Chrome-trace-event JSON file of the timing loop's per-worker region spans to this path")
	)
	flag.Parse()

	if *compare != "" && *check == "" {
		fatal(fmt.Errorf("-compare %s without -check does nothing; pass the baseline to gate against", *compare))
	}
	// The microbench builds its own shared state per thread count, so the
	// backend choice flows through the documented BackendAuto resolution
	// path: validate the flag, then pin the environment for this process.
	// (The generic-vs-fused comparison section always measures both.)
	if b, err := core.ParseBackend(*backendF); err != nil {
		fatal(err)
	} else if b != core.BackendAuto {
		os.Setenv("PLK_BACKEND", b.String())
	}

	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			fatal(err)
		}
		defer pprof.StopCPUProfile()
	}
	if *memprofile != "" {
		defer func() {
			f, err := os.Create(*memprofile)
			if err != nil {
				fatal(err)
			}
			defer f.Close()
			runtime.GC()
			if err := pprof.WriteHeapProfile(f); err != nil {
				fatal(err)
			}
		}()
	}

	// First Ctrl-C cancels the measurement between benchmark sections; a
	// second hard-exits with a non-zero status instead of hanging on a
	// section already in flight.
	ctx, stop := sigctx.Notify(context.Background(), "plkbench")
	defer stop()

	var rep *bench.MicrobenchReport
	if *compare != "" {
		rep = readReport(*compare)
	} else {
		var counts []int
		for _, f := range strings.Split(*threads, ",") {
			t, err := strconv.Atoi(strings.TrimSpace(f))
			if err != nil {
				fatal(fmt.Errorf("bad thread count %q: %w", f, err))
			}
			counts = append(counts, t)
		}
		var mobs *bench.MicrobenchObs
		if *metricsF || *traceOut != "" {
			mobs = &bench.MicrobenchObs{}
			if *metricsF {
				mobs.Metrics = obs.NewRegistry()
			}
			if *traceOut != "" {
				mobs.Tracer = obs.NewTracer(0)
			}
		}
		var err error
		rep, err = bench.Microbench(ctx, counts, *scale, *seed, mobs)
		if err != nil {
			fatal(err)
		}
		writeReport(rep, *out)
		if mobs != nil {
			dumpObs(mobs, *traceOut)
		}
	}

	if *check != "" {
		baseline := readReport(*check)
		if regs := bench.CompareReports(baseline, rep, *tolerance); len(regs) > 0 {
			fmt.Fprintf(os.Stderr, "plkbench: %d perf regression(s) vs %s:\n", len(regs), *check)
			for _, r := range regs {
				fmt.Fprintln(os.Stderr, "  "+r)
			}
			os.Exit(1)
		}
		fmt.Printf("perf gate passed vs %s (tolerance %.0f%%)\n", *check, 100**tolerance)
	}
}

func readReport(path string) *bench.MicrobenchReport {
	data, err := os.ReadFile(path)
	if err != nil {
		fatal(err)
	}
	rep := new(bench.MicrobenchReport)
	if err := json.Unmarshal(data, rep); err != nil {
		fatal(fmt.Errorf("%s: %w", path, err))
	}
	return rep
}

func writeReport(rep *bench.MicrobenchReport, out string) {
	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		fatal(err)
	}
	data = append(data, '\n')
	if out == "-" {
		os.Stdout.Write(data)
		return
	}
	if err := os.WriteFile(out, data, 0o644); err != nil {
		fatal(err)
	}
	for _, kt := range rep.Timings {
		fmt.Printf("T=%-2d evaluate %12.0f ns/op   newview %12.0f ns/op\n",
			kt.Threads, kt.EvaluateNsOp, kt.NewviewNsOp)
	}
	for _, tc := range rep.TipCase {
		fmt.Printf("T=%-2d tip-heavy newview: specialized %10.0f ns/op   generic %10.0f ns/op   speedup %.2fx\n",
			tc.Threads, tc.SpecializedNsOp, tc.GenericNsOp, tc.Speedup)
	}
	for _, sm := range rep.Steal {
		fmt.Printf("T=%-2d steal: %6.0f steals  %8.0f patterns migrated (%.1f%% of processed)  time-imbalance %.3f  per-worker %v\n",
			sm.Threads, sm.StealCount, sm.StolenPatterns, 100*sm.MigratedFraction, sm.TimeImbalance, sm.WorkerSteals)
	}
	if c := rep.StealComparison; c != nil {
		fmt.Printf("steal-vs-weighted end state: static time-imbalance %.4f, steal %.4f (%.0f steals)\n",
			c.WeightedTimeImbalance, c.StealTimeImbalance, c.StealCount)
	}
	for _, bt := range rep.BackendCase {
		fmt.Printf("T=%-2d backend newview: generic %10.0f ns/op   fused %10.0f ns/op   speedup %.2fx\n",
			bt.Threads, bt.GenericNsOp, bt.FusedNsOp, bt.Speedup)
	}
	for _, bt := range rep.Bootstrap {
		fmt.Printf("T=%-2d bootstrap (R=%d): batched %8.0f reps/sec   independent %8.0f reps/sec   speedup %.2fx\n",
			bt.Threads, bt.Replicates, bt.BatchedRepsPerSec, bt.IndependentRepsPerSec, bt.Speedup)
	}
	if rep.Backend != "" {
		fmt.Printf("active kernel backend: %s\n", rep.Backend)
	}
	if rep.DatasetBytes > 0 {
		fmt.Printf("dataset memory footprint: %.2f MiB (shared state + one session)\n",
			float64(rep.DatasetBytes)/(1<<20))
	}
	fmt.Printf("wrote %s\n", out)
}

// dumpObs writes the optional observability artifacts: the metrics text goes
// to stderr (stdout may be the report when -out -), the trace to its file.
func dumpObs(mobs *bench.MicrobenchObs, tracePath string) {
	if mobs.Metrics != nil {
		if err := mobs.Metrics.WriteText(os.Stderr); err != nil {
			fatal(err)
		}
	}
	if mobs.Tracer != nil && tracePath != "" {
		f, err := os.Create(tracePath)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		if err := mobs.Tracer.WriteJSON(f); err != nil {
			fatal(err)
		}
		fmt.Printf("wrote trace %s (%d spans, %d dropped)\n", tracePath, mobs.Tracer.Len(), mobs.Tracer.Dropped())
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "plkbench:", err)
	os.Exit(1)
}
