// Command seqgen is the repository's Seq-Gen equivalent: it generates the
// paper's simulated and real-world-shaped datasets and writes them as a
// PHYLIP alignment, a RAxML-style partition file, and the generating tree.
//
//	seqgen -grid d50_50000 -partlen 1000 -out d50               # paper scale
//	seqgen -real r125_19839 -scale 0.1 -out r125                # 10% columns
package main

import (
	"flag"
	"fmt"
	"os"

	"phylo"
)

func main() {
	var (
		grid    = flag.String("grid", "", "grid dataset name, e.g. d50_50000")
		real    = flag.String("real", "", "real-world stand-in: r26_21451, r24_16916, r125_19839")
		partLen = flag.Int("partlen", 1000, "partition length for -grid")
		scale   = flag.Float64("scale", 1.0, "column scale (1.0 = paper scale)")
		seed    = flag.Int64("seed", 42, "simulation seed")
		out     = flag.String("out", "dataset", "output file prefix")
	)
	flag.Parse()

	var al *phylo.Alignment
	var err error
	switch {
	case *grid != "":
		var taxa, sites int
		if _, err := fmt.Sscanf(*grid, "d%d_%d", &taxa, &sites); err != nil {
			fatal(fmt.Errorf("bad grid name %q", *grid))
		}
		al, err = phylo.SimulateGrid(taxa, sites, *partLen, *scale, *seed)
	case *real != "":
		al, err = phylo.SimulateRealWorld(*real, *scale, *seed)
	default:
		fatal(fmt.Errorf("need -grid or -real"))
	}
	if err != nil {
		fatal(err)
	}

	phy, err := os.Create(*out + ".phy")
	if err != nil {
		fatal(err)
	}
	defer phy.Close()
	if err := al.WritePhylip(phy); err != nil {
		fatal(err)
	}
	parts, err := os.Create(*out + ".part")
	if err != nil {
		fatal(err)
	}
	defer parts.Close()
	if err := al.WritePartitions(parts); err != nil {
		fatal(err)
	}
	fmt.Printf("wrote %s.phy (%d taxa x %d sites) and %s.part (%d partitions)\n",
		*out, al.NumTaxa(), al.NumSites(), *out, al.NumPartitions())

	// Report what the likelihood kernel will actually see: pattern
	// compression is the first stage of the per-dataset setup a Dataset
	// amortizes across analysis sessions. Best-effort — the files above are
	// already written.
	if sites, patterns, err := al.CompressionStats(); err == nil {
		fmt.Printf("compressed: %d sites -> %d patterns (%.1f%%)\n",
			sites, patterns, 100*float64(patterns)/float64(sites))
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "seqgen:", err)
	os.Exit(1)
}
