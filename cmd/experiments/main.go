// Command experiments regenerates the paper's evaluation: Figures 3-6, the
// joint-branch-length, model-optimization, and protein text results, the
// region-width microbenchmark, and the dataset grid inventory.
//
//	experiments -all -scale 0.04                 # the full suite, laptop scale
//	experiments -fig 3 -scale 0.1 -rounds 2      # one figure, bigger datasets
//	experiments -exp protein
//	experiments -exp grid                        # dataset inventory (Sec. V, Test Datasets)
//	experiments -exp schedule                    # cyclic vs block vs weighted assignment
//	experiments -exp adaptive                    # measured (feedback) schedule vs mispriced weighted
//	experiments -exp steal                       # intra-region work stealing vs static weighted
//	experiments -fig 3 -schedule weighted        # rerun a figure under another schedule
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"

	"phylo/internal/alignment"
	"phylo/internal/bench"
	"phylo/internal/core"
	"phylo/internal/schedule"
	"phylo/internal/seqsim"
)

func main() {
	var (
		fig      = flag.Int("fig", 0, "figure to regenerate: 3, 4, 5, or 6")
		exp      = flag.String("exp", "", "text experiment: joint | modelopt | protein | width | grid | schedule | adaptive | steal")
		all      = flag.Bool("all", false, "regenerate everything")
		scale    = flag.Float64("scale", 0.04, "dataset column scale (1.0 = paper scale)")
		rounds   = flag.Int("rounds", 1, "SPR rounds per search run")
		radius   = flag.Int("radius", 3, "SPR rearrangement radius")
		seed     = flag.Int64("seed", 42, "master seed")
		schedStr = flag.String("schedule", "cyclic", "pattern-to-worker assignment: cyclic | block | weighted")
		backendF = flag.String("backend", "auto", "likelihood kernel backend: auto | generic | fused (auto honors PLK_BACKEND, default fused)")
		out      = flag.String("out", "", "write output to file instead of stdout")
	)
	flag.Parse()
	sched, err := schedule.Parse(*schedStr)
	if err != nil {
		fatal(err)
	}
	// The figure drivers build their run specs internally with the zero-value
	// (auto) kernel backend, so the flag is applied through the documented
	// environment resolution path after validating it.
	if b, err := core.ParseBackend(*backendF); err != nil {
		fatal(err)
	} else if b != core.BackendAuto {
		os.Setenv("PLK_BACKEND", b.String())
	}

	var w io.Writer = os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		w = io.MultiWriter(os.Stdout, f)
	}
	// Ctrl-C cancels the in-flight analysis at its next synchronization
	// region; partial output written so far is preserved.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()
	cfg := bench.FigureConfig{Scale: *scale, SearchRounds: *rounds, SearchRadius: *radius, Seed: *seed, Schedule: sched, Out: w}

	switch {
	case *all:
		err = bench.RunAll(ctx, cfg)
	case *fig == 3:
		err = bench.Figure3(ctx, cfg)
	case *fig == 4:
		err = bench.Figure4(ctx, cfg)
	case *fig == 5:
		err = bench.Figure5(ctx, cfg)
	case *fig == 6:
		err = bench.Figure6(ctx, cfg)
	case *exp == "joint":
		err = bench.JointBLExperiment(ctx, cfg)
	case *exp == "modelopt":
		err = bench.ModelOptExperiment(ctx, cfg)
	case *exp == "protein":
		err = bench.ProteinExperiment(ctx, cfg)
	case *exp == "width":
		err = bench.WidthMicrobench(ctx, cfg)
	case *exp == "schedule":
		err = bench.ScheduleExperiment(ctx, cfg)
	case *exp == "adaptive":
		err = bench.AdaptiveExperiment(ctx, cfg)
	case *exp == "steal":
		err = bench.StealExperiment(ctx, cfg)
	case *exp == "grid":
		err = gridInventory(cfg)
	default:
		flag.Usage()
		os.Exit(2)
	}
	if err != nil {
		fatal(err)
	}
}

// gridInventory regenerates the paper's "Test Datasets" table: the 12
// simulated alignments and the partition schemes applicable to each.
func gridInventory(cfg bench.FigureConfig) error {
	fmt.Fprintln(cfg.Out, "=== Test datasets (Sec. V): simulated grid ===")
	fmt.Fprintf(cfg.Out, "%-12s %6s %8s  %s\n", "dataset", "taxa", "columns", "partition schemes (columns at this scale)")
	for _, taxa := range seqsim.GridTaxa {
		for _, sites := range seqsim.GridSites {
			row := fmt.Sprintf("%-12s %6d %8d ", fmt.Sprintf("d%d_%d", taxa, sites), taxa, sites)
			for _, pl := range []int{1000, 5000, 10000} {
				if pl > sites {
					continue
				}
				ds, err := seqsim.GridDataset(taxa, sites, pl, cfg.Scale, cfg.Seed)
				if err != nil {
					return err
				}
				st := ds.Stats()
				row += fmt.Sprintf(" p%d:%dx%d", pl, st.NumPartitions, st.MinPatterns)
			}
			fmt.Fprintln(cfg.Out, row)
		}
	}
	for _, spec := range []seqsim.RealWorldSpec{seqsim.R26Spec, seqsim.R24Spec, seqsim.R125Spec} {
		ds, err := seqsim.RealWorldDataset(spec, cfg.Scale, cfg.Seed)
		if err != nil {
			return err
		}
		d, err := alignment.Compress(ds.Alignment, ds.Parts, alignment.CompressOptions{})
		if err != nil {
			return err
		}
		st := d.Stats()
		fmt.Fprintf(cfg.Out, "%-12s %6d %8d  %d partitions, %d..%d patterns (paper: %d..%d at full scale), type %v\n",
			spec.Name, spec.Taxa, d.TotalSites, st.NumPartitions, st.MinPatterns, st.MaxPatterns,
			spec.MinPart, spec.MaxPart, spec.Type)
	}
	fmt.Fprintln(cfg.Out)
	return nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "experiments:", err)
	os.Exit(1)
}
