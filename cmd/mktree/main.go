// Command mktree generates a random unrooted binary tree (stepwise random
// addition with exponential branch lengths) and prints it in Newick format —
// the seed trees of the paper's simulated datasets.
//
//	mktree -taxa 50 -seed 7 > seed50.nwk
package main

import (
	"flag"
	"fmt"
	"os"

	"phylo/internal/seqsim"
	"phylo/internal/tree"
)

func main() {
	var (
		taxa = flag.Int("taxa", 10, "leaf count")
		seed = flag.Int64("seed", 1, "random seed")
		mean = flag.Float64("mean", 0.1, "mean branch length")
	)
	flag.Parse()
	tr, err := tree.Random(seqsim.TaxaNames(*taxa), 1, tree.RandomOptions{Seed: *seed, MeanBranchLength: *mean})
	if err != nil {
		fmt.Fprintln(os.Stderr, "mktree:", err)
		os.Exit(1)
	}
	fmt.Println(tree.WriteNewick(tr, 0))
}
