// Command plkrun runs one phylogenetic likelihood analysis: model-parameter
// optimization or a full ML tree search, sequentially or in parallel, under
// the oldPAR or newPAR strategy, on a file-based or generated dataset.
//
// The dataset is built once (phylo.NewDataset) and the analysis runs as a
// session over it; -sessions N runs N identical concurrent sessions over the
// same dataset and verifies they agree — bit-for-bit for static schedules,
// within reassociation tolerance for -schedule adaptive (whose sessions
// rebalance independently). Ctrl-C cancels the run at the next
// synchronization-region boundary and prints the partial result; a second
// Ctrl-C exits immediately with a non-zero status.
//
// Examples:
//
//	plkrun -align data.phy -parts data.part -mode search -threads 8 -strategy new -perpart
//	plkrun -grid d50_50000 -partlen 1000 -scale 0.02 -mode modelopt -threads 16 -virtual -strategy old
//	plkrun -real r125_19839 -scale 0.05 -mode search -threads 8 -progress
//	plkrun -grid d50_50000 -scale 0.01 -mode modelopt -threads 4 -sessions 3
//	plkrun -grid d50_50000 -scale 0.02 -mode modelopt -threads 8 -schedule weighted -steal
//	plkrun -grid d20_10000 -scale 0.05 -mode modelopt -threads 4 -bootstrap 100 -seed 7
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"math"
	"os"
	"strings"
	"sync"

	"phylo"
	"phylo/internal/sigctx"
)

func main() {
	var (
		alignPath = flag.String("align", "", "PHYLIP alignment file")
		partsPath = flag.String("parts", "", "RAxML-style partition file")
		grid      = flag.String("grid", "", "generate a simulated grid dataset, e.g. d50_50000")
		real      = flag.String("real", "", "generate a real-world stand-in: r26_21451, r24_16916, r125_19839")
		partLen   = flag.Int("partlen", 1000, "partition length for -grid (1000/5000/10000)")
		scale     = flag.Float64("scale", 1.0, "dataset column scale (1.0 = paper scale)")
		mode      = flag.String("mode", "eval", "analysis: eval | modelopt | search")
		threads   = flag.Int("threads", 1, "worker count")
		strategy  = flag.String("strategy", "new", "parallelization strategy: old | new")
		schedFlag = flag.String("schedule", "cyclic", "pattern-to-worker assignment: cyclic | block | weighted | adaptive")
		rebThresh = flag.Float64("rebalance-threshold", 0, "measured worker-time imbalance that triggers an adaptive reschedule (<=1 = default 1.1; only with -schedule adaptive)")
		stealFlag = flag.Bool("steal", false, "intra-region work stealing: chunked per-worker deques, drained workers steal half of the most loaded victim")
		backendF  = flag.String("backend", "auto", "likelihood kernel backend: auto | generic | fused (auto honors PLK_BACKEND, default fused)")
		minChunk  = flag.Int("min-chunk", 0, "minimum stealable chunk size in patterns (0 = default 64; only with -steal)")
		perPart   = flag.Bool("perpart", false, "per-partition branch lengths")
		virtual   = flag.Bool("virtual", false, "virtual workers + platform pricing instead of real goroutines")
		seed      = flag.Int64("seed", 42, "random seed (datasets and starting tree)")
		rounds    = flag.Int("rounds", 2, "SPR rounds for -mode search")
		radius    = flag.Int("radius", 5, "SPR rearrangement radius")
		treePath  = flag.String("tree", "", "Newick starting tree file (default: random from -seed)")
		progress  = flag.Bool("progress", false, "stream per-round progress events")
		sessions  = flag.Int("sessions", 1, "concurrent identical sessions over the one dataset")
		bootstrap = flag.Int("bootstrap", 0, "after the analysis, run N batched bootstrap replicates (seeded by -seed) and print the support-annotated tree")
		metricsF  = flag.Bool("metrics", false, "dump the full metrics registry (Prometheus text format) to stdout when the run completes")
		traceOut  = flag.String("trace", "", "write a Chrome-trace-event JSON file of per-worker region spans to this path (open in chrome://tracing or Perfetto)")
	)
	flag.Parse()

	// Ctrl-C cancels the analysis at the next synchronization-region
	// boundary; the partial result is still printed. A second Ctrl-C
	// hard-exits with a non-zero status instead of hanging on a slow drain.
	ctx, stop := sigctx.Notify(context.Background(), "plkrun")
	defer stop()

	al, err := loadAlignment(*alignPath, *partsPath, *grid, *real, *partLen, *scale, *seed)
	if err != nil {
		fatal(err)
	}
	strat := phylo.NewPar
	if strings.HasPrefix(strings.ToLower(*strategy), "old") {
		strat = phylo.OldPar
	}
	sched, err := phylo.ParseScheduleStrategy(*schedFlag)
	if err != nil {
		fatal(err)
	}
	backend, err := phylo.ParseKernelBackend(*backendF)
	if err != nil {
		fatal(err)
	}
	// Observability is always on: the flush-at-region-boundary design makes
	// the registry free on the hot path, and the final per-worker summary
	// line comes from it. -metrics and -trace only change what gets dumped.
	reg := phylo.NewMetricsRegistry()
	var tracer *phylo.Tracer
	if *traceOut != "" {
		tracer = phylo.NewTracer(0)
	}
	ds, err := phylo.NewDataset(al, phylo.DatasetOptions{
		Threads:        *threads,
		Schedule:       sched,
		VirtualThreads: *virtual,
		Steal:          *stealFlag,
		Backend:        backend,
		Metrics:        reg,
		Trace:          tracer,
	})
	if err != nil {
		fatal(err)
	}
	defer ds.Close()
	defer finishObs(reg, tracer, *metricsF, *traceOut, *threads)

	aopts := phylo.AnalysisOptions{
		Strategy:                  strat,
		PerPartitionBranchLengths: *perPart,
		Seed:                      *seed,
		RebalanceThreshold:        *rebThresh,
		MinChunk:                  *minChunk,
	}
	if *treePath != "" {
		nwk, err := os.ReadFile(*treePath)
		if err != nil {
			fatal(err)
		}
		aopts.StartTreeNewick = strings.TrimSpace(string(nwk))
	}
	if *progress {
		aopts.Progress = func(ev phylo.ProgressEvent) {
			fmt.Printf("  [%s round %d] lnL=%.4f moves=%d/%d regions=%d workerImbalance=%.3f\n",
				ev.Phase, ev.Round, ev.LnL, ev.MovesApplied, ev.MovesTried, ev.Regions, ev.WorkerImbalance)
		}
	}

	fmt.Printf("dataset: %d taxa, %d sites -> %d patterns, %d partitions; strategy %v, schedule %v, backend %v, %d threads\n",
		ds.NumTaxa(), ds.NumSites(), ds.NumPatterns(), ds.NumPartitions(), strat, sched, ds.Backend(), *threads)

	if *sessions > 1 {
		if *bootstrap > 0 {
			fatal(errors.New("-bootstrap runs on a single session; drop -sessions"))
		}
		if err := runConcurrent(ctx, ds, aopts, sched, *sessions, *mode, *rounds, *radius); err != nil {
			fatal(err)
		}
		return
	}

	an, err := ds.NewAnalysis(aopts)
	if err != nil {
		fatal(err)
	}
	defer an.Close()
	lnl, err := runOne(ctx, an, *mode, *rounds, *radius)
	cancelled := errors.Is(err, context.Canceled)
	if err != nil && !cancelled {
		fatal(err)
	}
	if cancelled {
		fmt.Println("interrupted — partial result:")
	}
	fmt.Printf("log likelihood: %.4f\n", lnl)
	st := an.Stats()
	fmt.Printf("parallel regions (barriers): %d   load imbalance: %.2f   worker imbalance: %.3f   time imbalance: %.3f\n",
		st.Regions, st.Imbalance, st.WorkerImbalance, st.TimeImbalance)
	if sched == phylo.ScheduleMeasured {
		fmt.Printf("adaptive schedule: %d rebalance(s)\n", st.Rebalances)
	}
	if *stealFlag {
		fmt.Printf("work stealing: %.0f steal(s), %.0f patterns migrated; per-worker steals %v\n",
			st.StealCount, st.StolenPatterns, st.WorkerSteals)
	}
	if *virtual {
		for _, p := range []string{"Nehalem", "Clovertown", "Barcelona", "x4600"} {
			if s, err := an.PlatformSeconds(p); err == nil {
				fmt.Printf("  virtual runtime on %-11s %10.1f s\n", p+":", s)
			}
		}
	}
	fmt.Printf("final tree: %s\n", an.TreeNewick())

	if *bootstrap > 0 && !cancelled {
		if err := runBootstrap(ctx, an, *bootstrap, *seed); err != nil && !errors.Is(err, context.Canceled) {
			fatal(err)
		}
	}
}

// finishObs prints the per-worker time/steal summary from the metrics
// registry and performs the optional -metrics / -trace dumps. Runs on every
// normal exit (deferred in main after the dataset is built).
func finishObs(reg *phylo.MetricsRegistry, tracer *phylo.Tracer, dump bool, tracePath string, threads int) {
	busy := make([]float64, threads)
	steals := make([]float64, threads)
	for _, s := range reg.Snapshot() {
		if s.Name != "plk_worker_busy_seconds_total" && s.Name != "plk_steals_total" {
			continue
		}
		w := -1
		for _, l := range s.Labels {
			if l.Key == "worker" {
				fmt.Sscanf(l.Value, "%d", &w)
			}
		}
		if w < 0 || w >= threads {
			continue
		}
		if s.Name == "plk_worker_busy_seconds_total" {
			busy[w] = s.Value
		} else {
			steals[w] = s.Value
		}
	}
	maxB, sumB, sumS := 0.0, 0.0, 0.0
	for w := 0; w < threads; w++ {
		sumB += busy[w]
		sumS += steals[w]
		if busy[w] > maxB {
			maxB = busy[w]
		}
	}
	imb := 1.0
	if avg := sumB / float64(threads); avg > 0 {
		imb = maxB / avg
	}
	fmt.Printf("per-worker busy seconds: %s  time imbalance (max/avg): %.3f  steals: %s (%.0f total)\n",
		fmtVec(busy, "%.3f"), imb, fmtVec(steals, "%.0f"), sumS)
	if dump {
		if err := reg.WriteText(os.Stdout); err != nil {
			fmt.Fprintln(os.Stderr, "plkrun: writing metrics:", err)
		}
	}
	if tracer != nil && tracePath != "" {
		f, err := os.Create(tracePath)
		if err != nil {
			fmt.Fprintln(os.Stderr, "plkrun: trace:", err)
			return
		}
		defer f.Close()
		if err := tracer.WriteJSON(f); err != nil {
			fmt.Fprintln(os.Stderr, "plkrun: writing trace:", err)
			return
		}
		fmt.Printf("trace: %d span(s) written to %s (%d dropped at the buffer bound)\n",
			tracer.Len(), tracePath, tracer.Dropped())
	}
}

// fmtVec renders a small per-worker vector compactly.
func fmtVec(v []float64, verb string) string {
	parts := make([]string, len(v))
	for i, x := range v {
		parts[i] = fmt.Sprintf(verb, x)
	}
	return "[" + strings.Join(parts, " ") + "]"
}

// runBootstrap draws R batched bootstrap replicates over the finished
// analysis tree and prints the support-annotated result.
func runBootstrap(ctx context.Context, an *phylo.Analysis, replicates int, seed int64) error {
	fmt.Printf("bootstrap: %d replicates (seed %d), scoring the tree and its NNI neighborhood in one batched sweep...\n",
		replicates, seed)
	res, err := an.Bootstrap(ctx, replicates, seed)
	if err != nil {
		return err
	}
	mlWins := 0
	for _, w := range res.ReplicateWinner {
		if w == 0 {
			mlWins++
		}
	}
	fmt.Printf("bootstrap: %d candidates scored; ML topology won %d/%d replicates\n",
		res.Candidates, mlWins, res.Replicates)
	minSup, sum := 1.0, 0.0
	for _, frac := range res.Support {
		sum += frac
		if frac < minSup {
			minSup = frac
		}
	}
	if len(res.Support) > 0 {
		fmt.Printf("bootstrap: mean split support %.0f%%, weakest split %.0f%%\n",
			100*sum/float64(len(res.Support)), 100*minSup)
	}
	fmt.Printf("support tree: %s\n", res.TreeNewick)
	return nil
}

// runOne executes one session's analysis and returns its log likelihood.
func runOne(ctx context.Context, an *phylo.Analysis, mode string, rounds, radius int) (float64, error) {
	switch mode {
	case "eval":
		return an.LogLikelihood(), nil
	case "modelopt":
		return an.OptimizeModel(ctx)
	case "search":
		res, err := an.SearchWith(ctx, phylo.SearchOptions{MaxRounds: rounds, Radius: radius})
		if err == nil {
			fmt.Printf("search: %d rounds, %d/%d moves applied\n", res.Rounds, res.MovesApplied, res.MovesTried)
		}
		return res.LnL, err
	default:
		return 0, fmt.Errorf("unknown mode %q", mode)
	}
}

// runConcurrent opens n identical sessions over the shared dataset, runs
// them concurrently, and verifies they agree: bit-identically for the static
// schedules, and within floating-point reassociation tolerance (1e-9
// relative) for the measured/adaptive one — concurrent sessions there
// rebalance at independent moments, so their per-worker reduction groupings
// legitimately differ in the last bits.
func runConcurrent(ctx context.Context, ds *phylo.Dataset, aopts phylo.AnalysisOptions, sched phylo.ScheduleStrategy, n int, mode string, rounds, radius int) error {
	fmt.Printf("running %d concurrent sessions over one dataset...\n", n)
	lnls := make([]float64, n)
	errs := make([]error, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		an, err := ds.NewAnalysis(aopts)
		if err != nil {
			return err
		}
		wg.Add(1)
		go func(i int, an *phylo.Analysis) {
			defer wg.Done()
			defer an.Close()
			lnls[i], errs[i] = runOne(ctx, an, mode, rounds, radius)
		}(i, an)
	}
	wg.Wait()
	cancelled := false
	for i := 0; i < n; i++ {
		if errs[i] != nil {
			if !errors.Is(errs[i], context.Canceled) {
				return errs[i]
			}
			cancelled = true
		}
		fmt.Printf("  session %d: lnL %.6f\n", i, lnls[i])
	}
	if cancelled {
		// Sessions cancel at whichever region boundary each had reached, so
		// their partial results legitimately differ; skip the comparison.
		fmt.Println("interrupted — partial results above")
		return nil
	}
	tol := 0.0
	if sched == phylo.ScheduleMeasured {
		tol = 1e-9 * math.Abs(lnls[0])
	}
	for i := 1; i < n; i++ {
		if diff := math.Abs(lnls[i] - lnls[0]); diff > tol {
			return fmt.Errorf("session %d disagrees: %v != %v", i, lnls[i], lnls[0])
		}
	}
	if tol == 0 {
		fmt.Println("all sessions agree bit-for-bit")
	} else {
		fmt.Println("all sessions agree within reassociation tolerance (independent rebalances)")
	}
	return nil
}

func loadAlignment(alignPath, partsPath, grid, real string, partLen int, scale float64, seed int64) (*phylo.Alignment, error) {
	switch {
	case alignPath != "":
		al, err := phylo.ReadPhylipFile(alignPath)
		if err != nil {
			return nil, err
		}
		if partsPath != "" {
			if err := al.SetPartitionsFromFile(partsPath); err != nil {
				return nil, err
			}
		}
		return al, nil
	case grid != "":
		var taxa, sites int
		if _, err := fmt.Sscanf(grid, "d%d_%d", &taxa, &sites); err != nil {
			return nil, fmt.Errorf("bad grid name %q (want dTAXA_SITES)", grid)
		}
		return phylo.SimulateGrid(taxa, sites, partLen, scale, seed)
	case real != "":
		return phylo.SimulateRealWorld(real, scale, seed)
	default:
		return nil, fmt.Errorf("need one of -align, -grid, -real")
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "plkrun:", err)
	os.Exit(1)
}
