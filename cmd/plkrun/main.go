// Command plkrun runs one phylogenetic likelihood analysis: model-parameter
// optimization or a full ML tree search, sequentially or in parallel, under
// the oldPAR or newPAR strategy, on a file-based or generated dataset.
//
// Examples:
//
//	plkrun -align data.phy -parts data.part -mode search -threads 8 -strategy new -perpart
//	plkrun -grid d50_50000 -partlen 1000 -scale 0.02 -mode modelopt -threads 16 -virtual -strategy old
//	plkrun -real r125_19839 -scale 0.05 -mode search -threads 8 -virtual
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"phylo"
)

func main() {
	var (
		alignPath = flag.String("align", "", "PHYLIP alignment file")
		partsPath = flag.String("parts", "", "RAxML-style partition file")
		grid      = flag.String("grid", "", "generate a simulated grid dataset, e.g. d50_50000")
		real      = flag.String("real", "", "generate a real-world stand-in: r26_21451, r24_16916, r125_19839")
		partLen   = flag.Int("partlen", 1000, "partition length for -grid (1000/5000/10000)")
		scale     = flag.Float64("scale", 1.0, "dataset column scale (1.0 = paper scale)")
		mode      = flag.String("mode", "eval", "analysis: eval | modelopt | search")
		threads   = flag.Int("threads", 1, "worker count")
		strategy  = flag.String("strategy", "new", "parallelization strategy: old | new")
		schedFlag = flag.String("schedule", "cyclic", "pattern-to-worker assignment: cyclic | block | weighted")
		perPart   = flag.Bool("perpart", false, "per-partition branch lengths")
		virtual   = flag.Bool("virtual", false, "virtual workers + platform pricing instead of real goroutines")
		seed      = flag.Int64("seed", 42, "random seed (datasets and starting tree)")
		rounds    = flag.Int("rounds", 2, "SPR rounds for -mode search")
		radius    = flag.Int("radius", 5, "SPR rearrangement radius")
		treePath  = flag.String("tree", "", "Newick starting tree file (default: random from -seed)")
	)
	flag.Parse()

	al, err := loadAlignment(*alignPath, *partsPath, *grid, *real, *partLen, *scale, *seed)
	if err != nil {
		fatal(err)
	}
	strat := phylo.NewPar
	if strings.HasPrefix(strings.ToLower(*strategy), "old") {
		strat = phylo.OldPar
	}
	sched, err := phylo.ParseScheduleStrategy(*schedFlag)
	if err != nil {
		fatal(err)
	}
	opts := phylo.Options{
		Threads:                   *threads,
		Strategy:                  strat,
		Schedule:                  sched,
		PerPartitionBranchLengths: *perPart,
		VirtualThreads:            *virtual,
		Seed:                      *seed,
	}
	if *treePath != "" {
		nwk, err := os.ReadFile(*treePath)
		if err != nil {
			fatal(err)
		}
		opts.StartTreeNewick = strings.TrimSpace(string(nwk))
	}
	an, err := phylo.NewAnalysis(al, opts)
	if err != nil {
		fatal(err)
	}
	defer an.Close()

	fmt.Printf("dataset: %d taxa, %d sites, %d partitions; strategy %v, schedule %v, %d threads\n",
		al.NumTaxa(), al.NumSites(), al.NumPartitions(), strat, sched, *threads)

	var lnl float64
	switch *mode {
	case "eval":
		lnl = an.LogLikelihood()
	case "modelopt":
		lnl, err = an.OptimizeModel()
	case "search":
		var res phylo.SearchResult
		res, err = an.SearchWith(phylo.SearchOptions{MaxRounds: *rounds, Radius: *radius})
		lnl = res.LnL
		if err == nil {
			fmt.Printf("search: %d rounds, %d/%d moves applied\n", res.Rounds, res.MovesApplied, res.MovesTried)
		}
	default:
		fatal(fmt.Errorf("unknown mode %q", *mode))
	}
	if err != nil {
		fatal(err)
	}
	fmt.Printf("log likelihood: %.4f\n", lnl)
	st := an.Stats()
	fmt.Printf("parallel regions (barriers): %d   load imbalance: %.2f   worker imbalance: %.3f\n",
		st.Regions, st.Imbalance, st.WorkerImbalance)
	if *virtual {
		for _, p := range []string{"Nehalem", "Clovertown", "Barcelona", "x4600"} {
			if s, err := an.PlatformSeconds(p); err == nil {
				fmt.Printf("  virtual runtime on %-11s %10.1f s\n", p+":", s)
			}
		}
	}
	fmt.Printf("final tree: %s\n", an.TreeNewick())
}

func loadAlignment(alignPath, partsPath, grid, real string, partLen int, scale float64, seed int64) (*phylo.Alignment, error) {
	switch {
	case alignPath != "":
		al, err := phylo.ReadPhylipFile(alignPath)
		if err != nil {
			return nil, err
		}
		if partsPath != "" {
			if err := al.SetPartitionsFromFile(partsPath); err != nil {
				return nil, err
			}
		}
		return al, nil
	case grid != "":
		var taxa, sites int
		if _, err := fmt.Sscanf(grid, "d%d_%d", &taxa, &sites); err != nil {
			return nil, fmt.Errorf("bad grid name %q (want dTAXA_SITES)", grid)
		}
		return phylo.SimulateGrid(taxa, sites, partLen, scale, seed)
	case real != "":
		return phylo.SimulateRealWorld(real, scale, seed)
	default:
		return nil, fmt.Errorf("need one of -align, -grid, -real")
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "plkrun:", err)
	os.Exit(1)
}
