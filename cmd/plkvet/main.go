// Command plkvet is the repo's multichecker: it runs the custom
// internal/lint analyzer suite (determinism, hotpath, holderdiscipline,
// regionctx, doclint, plus the //plk: directive hygiene check) over the
// requested packages, and — when an allowlist is present — the
// bounds-check-elimination gate over the fused kernel package. CI runs it
// as a hard gate:
//
//	go run ./cmd/plkvet ./...
//
// A clean run exits 0 and prints one summary line; findings print in the
// conventional file:line:col form and exit 1. The BCE allowlist is
// refreshed deliberately with -bce-rewrite (review the diff like any other
// change). See DESIGN.md "Static analysis and enforced invariants" for the
// annotation grammar the analyzers enforce.
package main

import (
	"flag"
	"fmt"
	"os"

	"phylo/internal/lint"
)

func main() {
	var (
		bcePkg     = flag.String("bce", "./internal/core", "package pattern for the bounds-check-elimination gate (empty disables)")
		bceAllow   = flag.String("bce-allow", "internal/lint/bce_allow.txt", "bounds-check allowlist path (missing file disables the gate)")
		bceRewrite = flag.Bool("bce-rewrite", false, "regenerate the bounds-check allowlist from the current compiler output and exit")
		verbose    = flag.Bool("v", false, "print informational notes (ceiling slack, version-skipped entries)")
	)
	flag.Parse()
	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}

	if *bceRewrite {
		if err := lint.RewriteBCEAllowlist(".", *bcePkg, *bceAllow); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Printf("plkvet: rewrote %s\n", *bceAllow)
		return
	}

	failed := false

	pkgs, err := lint.Load(".", patterns...)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	checked := 0
	for _, p := range pkgs {
		for _, e := range p.Errs {
			failed = true
			fmt.Fprintf(os.Stderr, "plkvet: %s: %v\n", p.ImportPath, e)
		}
		if p.Types != nil {
			checked++
		}
	}
	diags := lint.Run(pkgs, lint.All())
	for _, d := range diags {
		fmt.Println(d.String())
	}
	if len(diags) > 0 {
		failed = true
	}

	bceRan := false
	if *bcePkg != "" {
		if _, err := os.Stat(*bceAllow); err == nil {
			res, err := lint.CheckBCE(".", *bcePkg, *bceAllow)
			if err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
			bceRan = true
			for _, p := range res.Problems {
				fmt.Printf("bce: %s\n", p)
				failed = true
			}
			if *verbose {
				for _, n := range res.Notes {
					fmt.Fprintf(os.Stderr, "bce note: %s\n", n)
				}
			}
		}
	}

	if failed {
		fmt.Fprintf(os.Stderr, "plkvet: %d finding(s)\n", len(diags))
		os.Exit(1)
	}
	gate := ""
	if bceRan {
		gate = " + BCE gate"
	}
	fmt.Printf("plkvet: %d package(s) clean (%d analyzers%s)\n", checked, len(lint.All()), gate)
}
