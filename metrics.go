package phylo

import "phylo/internal/obs"

// MetricsRegistry is a process-local metrics registry: counters, gauges, and
// fixed-bucket histograms with atomic, allocation-free updates and
// Prometheus-text-format exposition (WriteText / Handler). Pass one through
// DatasetOptions.Metrics to have a Dataset and all of its sessions report
// kernel, region, scheduling, and steal activity into it; several datasets
// may share one registry (same-labeled series aggregate).
type MetricsRegistry = obs.Registry

// MetricSample is one flattened time-series sample from
// MetricsRegistry.Snapshot: a family name, its label pairs, and the current
// value. Histograms are flattened into _bucket/_sum/_count samples.
type MetricSample = obs.Sample

// MetricLabel is one name/value label pair on a metric series.
type MetricLabel = obs.Label

// Tracer is a bounded in-memory span buffer recording region, phase, and
// analysis lifecycle events, exportable as Chrome-trace-event JSON
// (WriteJSON; load the file in chrome://tracing or Perfetto). Pass one
// through DatasetOptions.Trace to capture per-worker region timelines.
type Tracer = obs.Tracer

// NewMetricsRegistry returns an empty metrics registry.
func NewMetricsRegistry() *MetricsRegistry { return obs.NewRegistry() }

// NewTracer returns a trace buffer holding at most capacity events
// (capacity <= 0 selects a default of 65536); once full, further events are
// dropped and counted.
func NewTracer(capacity int) *Tracer { return obs.NewTracer(capacity) }
