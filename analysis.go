package phylo

import (
	"context"
	"fmt"
	"math"
	"sync"

	"phylo/internal/core"
	"phylo/internal/model"
	"phylo/internal/opt"
	"phylo/internal/parallel"
	"phylo/internal/search"
	"phylo/internal/tree"
)

// orBackground substitutes the background context for a nil one.
func orBackground(ctx context.Context) context.Context {
	if ctx == nil {
		return context.Background()
	}
	return ctx
}

// Phase identifies which long-running entry point emitted a ProgressEvent.
type Phase string

// Progress phases.
const (
	// PhaseModelOpt events stream from OptimizeModel, one per outer round.
	PhaseModelOpt Phase = "model-opt"
	// PhaseSearch events stream from Search, one per SPR round.
	PhaseSearch Phase = "search"
)

// ProgressEvent is one per-round snapshot of a long-running analysis,
// streamed through AnalysisOptions.Progress: the round number, the current
// log likelihood, the cumulative SPR move counts (search only), and the
// parallel-runtime view at the time of the event — synchronization regions
// issued so far and the cumulative per-worker load imbalance of this
// session.
type ProgressEvent struct {
	// Phase names the entry point that produced the event (PhaseModelOpt,
	// PhaseSearch, or PhaseBootstrap).
	Phase Phase
	// Round is 1-based within the current entry point.
	Round int
	// LnL is the log likelihood after the round.
	LnL float64
	// MovesApplied and MovesTried accumulate over the search (zero during
	// model optimization).
	MovesApplied, MovesTried int
	// Regions is this session's synchronization-region count so far.
	Regions int64
	// WorkerImbalance is the session's cumulative max/avg per-worker load
	// ratio (1.0 = perfectly balanced).
	WorkerImbalance float64
	// TimeImbalance is the measured analogue of WorkerImbalance: the max/avg
	// ratio of cumulative per-worker wall-clock seconds inside regions.
	TimeImbalance float64
	// Rebalances counts the measured-schedule rebuilds performed so far
	// (always 0 for static schedule strategies).
	Rebalances int
	// StealCount and StolenPatterns report the intra-region work-stealing
	// activity so far (always 0 unless the Dataset enables Steal): how many
	// steal operations workers performed and how many patterns migrated
	// through them. Sustained heavy migration means the schedule's static
	// pack is mispriced, not just noisy.
	StealCount, StolenPatterns float64
}

// AnalysisOptions configures one analysis session over a Dataset. Only
// mutable per-session choices live here; anything the precomputed shared
// state depends on (threads, schedule, Gamma categories) is fixed in
// DatasetOptions.
type AnalysisOptions struct {
	// Strategy selects oldPAR or newPAR (default NewPar).
	Strategy Strategy
	// PerPartitionBranchLengths estimates a separate branch length per
	// partition (the paper's hardest, most important case); false uses a
	// joint estimate across partitions.
	PerPartitionBranchLengths bool
	// StartTreeNewick fixes the starting topology; empty generates a random
	// tree from Seed (the paper's "fixed input tree for reproducibility").
	StartTreeNewick string
	// Seed drives random-tree generation (default 1).
	Seed int64
	// Progress, if non-nil, receives one ProgressEvent per optimizer or
	// search round. It is called on the analysing goroutine between
	// parallel regions: keep it fast and do not call back into the session.
	Progress func(ProgressEvent)
	// RebalanceThreshold is the hysteresis gate for the measured (adaptive)
	// schedule strategy: at every optimizer/search round boundary the session
	// rebuilds its worker assignment from observed per-pattern costs if the
	// measured per-worker wall-time imbalance (max/avg) exceeds this ratio.
	// Values <= 1 select the default of 1.1; the field is ignored unless the
	// Dataset was built with ScheduleMeasured.
	RebalanceThreshold float64
	// MinChunk is the minimum stealable work unit in alignment patterns for
	// a session on a Steal-enabled Dataset (0 selects the default of 64,
	// which amortizes the tip-table fast path). Smaller chunks bound tail
	// latency tighter but migrate more per-span setup work; the value never
	// affects results, only the work distribution. Ignored unless
	// DatasetOptions.Steal is set.
	MinChunk int
}

// Analysis is one live likelihood session over a Dataset. It owns only the
// mutable state — the tree, the conditional likelihood vectors, its own
// copies of the model parameters, and per-worker scratch — and borrows
// everything else (patterns, schedules, the worker pool) read-only from the
// Dataset, so sessions are cheap and any number may run concurrently.
//
// An Analysis is a single-session object: its methods must not be called
// concurrently with each other. Concurrency happens across sessions.
type Analysis struct {
	ds          *Dataset
	ownsDataset bool // legacy NewAnalysis(al, Options{}) path

	eng       *core.Engine
	exec      parallel.Executor
	tr        *tree.Tree
	strategy  Strategy
	progress  func(ProgressEvent)
	rebalance float64 // measured-schedule hysteresis threshold (0 = default)

	mu     sync.Mutex
	closed bool
}

// NewAnalysis opens a new analysis session: it clones the dataset's model
// templates, builds the starting tree, allocates the session's likelihood
// buffers, and attaches to the shared worker pool (or creates a private
// virtual/sequential executor). Sessions over one Dataset may run
// concurrently; with identical options they produce bit-identical results.
func (ds *Dataset) NewAnalysis(o AnalysisOptions) (*Analysis, error) {
	ds.mu.Lock()
	if ds.closed {
		ds.mu.Unlock()
		return nil, ErrDatasetClosed
	}
	ds.active++
	ds.mu.Unlock()
	an, err := ds.newAnalysis(o)
	if err != nil {
		ds.release()
		return nil, err
	}
	return an, nil
}

func (ds *Dataset) newAnalysis(o AnalysisOptions) (*Analysis, error) {
	if o.Seed == 0 {
		o.Seed = 1
	}
	models := make([]*model.Model, len(ds.models))
	for i, m := range ds.models {
		models[i] = m.Clone()
	}
	zSlots := 1
	if o.PerPartitionBranchLengths && len(ds.data.Parts) > 1 {
		zSlots = len(ds.data.Parts)
	}
	var tr *tree.Tree
	var err error
	if o.StartTreeNewick != "" {
		tr, err = tree.ParseNewick(o.StartTreeNewick, ds.names, zSlots)
	} else {
		tr, err = tree.Random(ds.names, zSlots, tree.RandomOptions{Seed: o.Seed})
	}
	if err != nil {
		return nil, err
	}
	var exec parallel.Executor
	switch {
	case ds.opts.VirtualThreads:
		exec, err = parallel.NewSim(ds.opts.Threads)
	case ds.pool != nil:
		exec = ds.pool.Session()
	default:
		exec = parallel.NewSequential()
	}
	if err != nil {
		return nil, err
	}
	// Pool sessions are observed at the pool level (one observer for all
	// sessions); private serial/virtual executors attach to the dataset's
	// collector here.
	if ds.collector != nil {
		if oe, ok := exec.(parallel.ObservableExecutor); ok {
			oe.SetObserver(ds.collector)
		}
	}
	eng, err := core.NewSession(ds.shared, tr, models, exec, core.Options{
		Specialize: true,
		Schedule:   ds.opts.Schedule,
		Steal:      ds.opts.Steal,
		MinChunk:   o.MinChunk,
		Backend:    ds.opts.Backend,
		Metrics:    ds.opts.Metrics,
		Tracer:     ds.opts.Trace,
	})
	if err != nil {
		exec.Close()
		return nil, err
	}
	return &Analysis{
		ds:        ds,
		eng:       eng,
		exec:      exec,
		tr:        tr,
		strategy:  o.Strategy,
		progress:  o.Progress,
		rebalance: o.RebalanceThreshold,
	}, nil
}

// Close releases the session's executor (its view of the shared pool; the
// pool itself stays up for other sessions). It is idempotent; every method
// called afterwards returns ErrAnalysisClosed (or NaN where the signature
// has no error). Analyses made with the legacy NewAnalysis shim own their
// Dataset and close it too.
func (an *Analysis) Close() error {
	an.mu.Lock()
	if an.closed {
		an.mu.Unlock()
		return nil
	}
	an.closed = true
	an.mu.Unlock()
	an.exec.Close()
	an.ds.release()
	if an.ownsDataset {
		return an.ds.Close()
	}
	return nil
}

// guard returns the appropriate error if this session or its dataset has
// been closed.
func (an *Analysis) guard() error {
	an.mu.Lock()
	closed := an.closed
	an.mu.Unlock()
	if closed {
		return ErrAnalysisClosed
	}
	if an.ds.isClosed() {
		return ErrDatasetClosed
	}
	return nil
}

// LogLikelihood evaluates the current tree and model. After Close it
// returns NaN (the signature carries no error; see Err-returning methods).
func (an *Analysis) LogLikelihood() float64 {
	if an.guard() != nil {
		return math.NaN()
	}
	return an.eng.LogLikelihood()
}

// PartitionLogLikelihoods returns the total and per-partition scores
// (NaN and nil after Close).
func (an *Analysis) PartitionLogLikelihoods() (float64, []float64) {
	if an.guard() != nil {
		return math.NaN(), nil
	}
	return an.eng.PartitionLogLikelihoods()
}

// optConfig assembles the optimizer configuration, wiring the session's
// progress stream and the measured-schedule rebalance hook in.
func (an *Analysis) optConfig() opt.Config {
	cfg := opt.DefaultConfig(an.strategy)
	if an.progress != nil {
		cfg.Progress = func(round int, lnl float64) {
			an.emit(ProgressEvent{Phase: PhaseModelOpt, Round: round, LnL: lnl})
		}
	}
	cfg.RoundEnd = an.maybeRebalance
	return cfg
}

// maybeRebalance runs the measured-schedule feedback step at a round
// boundary; it is a no-op unless the dataset uses ScheduleMeasured and the
// observed imbalance crosses the hysteresis threshold. Rebalance errors are
// deliberately swallowed here: a failed rebuild leaves the previous (valid)
// schedule in place and must not abort an otherwise healthy optimization.
func (an *Analysis) maybeRebalance() {
	_, _ = an.eng.MaybeRebalance(an.rebalance)
}

// Rebalance manually triggers one measured-schedule rebuild from the costs
// observed so far, bypassing the hysteresis threshold (the automatic path
// runs between optimizer rounds). It reports whether a rebuild happened:
// sessions on static schedule strategies return false with no error. Like
// every Analysis method it must not be called concurrently with another
// method of the same session.
func (an *Analysis) Rebalance() (bool, error) {
	if err := an.guard(); err != nil {
		return false, err
	}
	if an.eng.Schedule().Strategy() != ScheduleMeasured {
		return false, nil
	}
	if err := an.eng.RebalanceNow(); err != nil {
		return false, err
	}
	return true, nil
}

// Rebalances reports how many measured-schedule rebuilds this session has
// performed (automatic and manual).
func (an *Analysis) Rebalances() int {
	if an.guard() != nil {
		return 0
	}
	return an.eng.Rebalances()
}

// emit fills in the runtime counters and delivers one progress event.
func (an *Analysis) emit(ev ProgressEvent) {
	st := an.exec.Stats()
	ev.Regions = st.Regions
	ev.WorkerImbalance = st.WorkerImbalance()
	ev.TimeImbalance = st.TimeImbalance()
	ev.Rebalances = an.eng.Rebalances()
	ev.StealCount = st.StealCount
	ev.StolenPatterns = st.StolenPatterns
	an.progress(ev)
}

// OptimizeModel optimizes branch lengths, alpha shape parameters, and GTR
// rates on the fixed current topology (the paper's "model parameter
// optimization" phase) and returns the final log likelihood. Cancelling ctx
// stops the optimization at the next synchronization-region boundary and
// returns the context's error together with the exact score of the
// partially optimized (fully consistent) state.
func (an *Analysis) OptimizeModel(ctx context.Context) (float64, error) {
	ctx = orBackground(ctx)
	if err := an.guard(); err != nil {
		return math.NaN(), err
	}
	o := opt.New(an.eng, an.optConfig())
	lnl, _, err := o.OptimizeModel(ctx)
	if err != nil {
		return lnl, err
	}
	return lnl, core.CheckFinite(lnl)
}

// OptimizeBranchLengths runs branch-length smoothing only.
func (an *Analysis) OptimizeBranchLengths(ctx context.Context) (float64, error) {
	ctx = orBackground(ctx)
	if err := an.guard(); err != nil {
		return math.NaN(), err
	}
	o := opt.New(an.eng, an.optConfig())
	lnl := o.SmoothAll(ctx)
	if err := ctx.Err(); err != nil {
		return lnl, err
	}
	return lnl, core.CheckFinite(lnl)
}

// SearchResult reports an SPR search.
type SearchResult struct {
	// LnL is the final log likelihood of the best tree found.
	LnL float64
	// Rounds is the number of SPR rounds actually run.
	Rounds int
	// MovesApplied and MovesTried count the accepted and the evaluated SPR
	// rearrangements over the whole search.
	MovesApplied, MovesTried int
}

// SearchOptions tunes Search; zero values select defaults.
type SearchOptions struct {
	// MaxRounds caps the number of SPR improvement rounds (default 5).
	MaxRounds int
	// Radius bounds how far a pruned subtree may be reinserted from its
	// original position, in edges (default 5).
	Radius int
}

// Search runs the SPR maximum-likelihood tree search with default settings.
func (an *Analysis) Search(ctx context.Context) (SearchResult, error) {
	return an.SearchWith(ctx, SearchOptions{})
}

// SearchWith runs the SPR search with explicit settings. Cancelling ctx
// stops the search at the next synchronization-region boundary: any pruned
// subtree is restored, the tree re-smoothed, and the returned SearchResult
// holds the exact score of that consistent partial result alongside the
// context's error — the session remains fully usable.
func (an *Analysis) SearchWith(ctx context.Context, so SearchOptions) (SearchResult, error) {
	ctx = orBackground(ctx)
	if err := an.guard(); err != nil {
		return SearchResult{LnL: math.NaN()}, err
	}
	cfg := search.DefaultConfig(an.strategy)
	if so.MaxRounds > 0 {
		cfg.MaxRounds = so.MaxRounds
	}
	if so.Radius > 0 {
		cfg.Radius = so.Radius
	}
	if an.progress != nil {
		cfg.Progress = func(round int, lnl float64, applied, tried int) {
			an.emit(ProgressEvent{Phase: PhaseSearch, Round: round, LnL: lnl,
				MovesApplied: applied, MovesTried: tried})
		}
	}
	cfg.RoundEnd = an.maybeRebalance
	res, runErr := search.New(an.eng, cfg).Run(ctx)
	out := SearchResult{LnL: res.LnL, Rounds: res.Rounds, MovesApplied: res.MovesApplied, MovesTried: res.MovesTried}
	if runErr != nil {
		return out, runErr
	}
	return out, core.CheckFinite(res.LnL)
}

// TreeNewick serializes the current tree with the branch lengths of slot 0
// — the joint estimate, or partition 0's lengths when per-partition branch
// lengths are enabled. Use TreeNewickForPartition for the other slots.
func (an *Analysis) TreeNewick() string {
	if an.guard() != nil {
		return ""
	}
	return tree.WriteNewick(an.tr, 0)
}

// TreeNewickForPartition serializes the current tree with partition k's
// branch lengths. With a joint branch-length estimate every partition shares
// slot 0, so all k return the same string.
func (an *Analysis) TreeNewickForPartition(k int) (string, error) {
	if err := an.guard(); err != nil {
		return "", err
	}
	if k < 0 || k >= an.eng.NumPartitions() {
		return "", fmt.Errorf("phylo: partition %d out of range", k)
	}
	return tree.WriteNewick(an.tr, an.eng.BranchSlot(k)), nil
}

// SetAlpha overrides the Gamma shape parameter of one partition (or of every
// partition when partition is negative) and invalidates the session's CLVs so
// the next evaluation reflects the new rates. It is the "model" knob of an
// evaluate request in the serving layer: a session opened from the dataset's
// model templates can be repointed at a caller-specified alpha without
// running the optimizer. Like every Analysis method it must not be called
// concurrently with another method of the same session.
func (an *Analysis) SetAlpha(partition int, alpha float64) error {
	if err := an.guard(); err != nil {
		return err
	}
	if partition >= an.eng.NumPartitions() {
		return fmt.Errorf("phylo: partition %d out of range", partition)
	}
	lo, hi := partition, partition+1
	if partition < 0 {
		lo, hi = 0, an.eng.NumPartitions()
	}
	for k := lo; k < hi; k++ {
		if err := an.eng.Models[k].SetAlpha(alpha); err != nil {
			return err
		}
	}
	an.eng.InvalidateCLVs()
	return nil
}

// Alpha returns the optimized Gamma shape parameter of a partition.
func (an *Analysis) Alpha(partition int) (float64, error) {
	if err := an.guard(); err != nil {
		return 0, err
	}
	if partition < 0 || partition >= an.eng.NumPartitions() {
		return 0, fmt.Errorf("phylo: partition %d out of range", partition)
	}
	return an.eng.Models[partition].Alpha, nil
}

// SyncStats summarizes the parallel runtime behaviour of everything this
// session executed so far: the synchronization (region/barrier) count and
// the load imbalance of the critical path — the quantities the paper's
// analysis is about. Sessions sharing one pool each see only their own
// counters.
type SyncStats struct {
	// Regions counts the synchronization regions (parallel barriers) this
	// session issued.
	Regions int64
	// CriticalOps and TotalOps are the cumulative per-region maximum worker
	// load and the cumulative total load, in analytic op-model units.
	CriticalOps, TotalOps float64
	// Imbalance is the cumulative region-level critical-path ratio:
	// CriticalOps divided by TotalOps/Workers (1.0 = perfectly balanced).
	Imbalance float64
	// WorkerImbalance is the max/avg ratio of cumulative per-worker op totals
	// across the whole run — the direct measure of how well the schedule's
	// pattern assignment balanced the work, priced by the analytic op model.
	WorkerImbalance float64
	// TimeImbalance is the measured counterpart: the max/avg ratio of
	// cumulative per-worker wall-clock seconds spent inside regions. A gap
	// between TimeImbalance and WorkerImbalance means the analytic model
	// mispriced the patterns — the signal ScheduleMeasured rebalances on.
	TimeImbalance float64
	// WorkerTime is the cumulative measured seconds per worker id.
	WorkerTime []float64
	// Rebalances counts this session's measured-schedule rebuilds.
	Rebalances int
	// StealCount and StolenPatterns total the session's intra-region steal
	// operations and the patterns that migrated through them; WorkerSteals
	// is the per-worker steal-count distribution (all zero unless the
	// Dataset enables Steal). A worker with a high steal count is one that
	// kept draining its share early — the under-priced side of the pack.
	StealCount, StolenPatterns float64
	// WorkerSteals is the per-worker steal-count distribution.
	WorkerSteals []float64
}

// Stats returns the session's accumulated parallel runtime statistics
// (the zero SyncStats after Close).
func (an *Analysis) Stats() SyncStats {
	if an.guard() != nil {
		return SyncStats{}
	}
	s := an.exec.Stats()
	return SyncStats{
		Regions:         s.Regions,
		CriticalOps:     s.CriticalOps,
		TotalOps:        s.TotalOps,
		Imbalance:       s.Imbalance(an.exec.Threads()),
		WorkerImbalance: s.WorkerImbalance(),
		TimeImbalance:   s.TimeImbalance(),
		WorkerTime:      append([]float64(nil), s.WorkerTime...),
		Rebalances:      an.eng.Rebalances(),
		StealCount:      s.StealCount,
		StolenPatterns:  s.StolenPatterns,
		WorkerSteals:    append([]float64(nil), s.WorkerSteals...),
	}
}

// MetricsSnapshot returns the current samples of the metrics registry this
// session's Dataset reports into — the facade's pull-based view of the same
// families a plkd /metrics scrape exposes. It returns nil when the Dataset
// was built without DatasetOptions.Metrics. The snapshot is registry-wide:
// with several sessions or datasets sharing one registry, the samples
// aggregate all of them.
func (an *Analysis) MetricsSnapshot() []MetricSample {
	if an.guard() != nil || an.ds.opts.Metrics == nil {
		return nil
	}
	return an.ds.opts.Metrics.Snapshot()
}

// PlatformSeconds prices the session's recorded execution trace on one of
// the paper's four platforms ("Nehalem", "Clovertown", "Barcelona",
// "x4600") at the dataset's thread count. Most meaningful with
// VirtualThreads enabled.
func (an *Analysis) PlatformSeconds(platform string) (float64, error) {
	if err := an.guard(); err != nil {
		return 0, err
	}
	p, err := parallel.PlatformByName(platform)
	if err != nil {
		return 0, err
	}
	return p.EvalSeconds(an.exec.Stats(), an.exec.Threads()), nil
}
